#include "sim/shard.hh"

#include <algorithm>
#include <map>

#include "common/serialize.hh"
#include "passes/pipeline.hh"
#include "sim/noise_model.hh"

namespace casq {

namespace {

constexpr std::uint8_t kSpecMagic[4] = {'C', 'S', 'Q', 'S'};
constexpr std::uint8_t kResultMagic[4] = {'C', 'S', 'Q', 'R'};
// Version 2 appended the simulation-backend selector to the spec;
// version 3 appended the prefix-state mode to the spec and the
// prefix-state hit counter to the result; version 4 replaced the
// 3-value noise recipe byte with the full serialized noise
// configuration (encodeNoiseModel block -- docs/sharding.md and
// docs/noise.md record the history).
constexpr std::uint32_t kFormatVersion = 4;

void
writeMagic(ByteWriter &w, const std::uint8_t (&magic)[4])
{
    for (std::uint8_t byte : magic)
        w.u8(byte);
    w.u32(kFormatVersion);
}

void
readMagic(ByteReader &r, const std::uint8_t (&magic)[4],
          const char *what)
{
    for (std::uint8_t byte : magic) {
        if (r.u8() != byte) {
            throw SerializeError(std::string("not a ") + what +
                                 " payload (bad magic)");
        }
    }
    const std::uint32_t version = r.u32();
    if (version != kFormatVersion) {
        throw SerializeError(
            std::string("unsupported ") + what + " format version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(kFormatVersion) + ")");
    }
}

// ------------------------------------------- circuit (de)coding

void
writeInstruction(ByteWriter &w, const Instruction &inst)
{
    w.u8(std::uint8_t(inst.op));
    w.u32(std::uint32_t(inst.qubits.size()));
    for (std::uint32_t q : inst.qubits)
        w.u32(q);
    w.u32(std::uint32_t(inst.params.size()));
    for (double p : inst.params)
        w.f64(p);
    w.i32(inst.cbit);
    w.i32(inst.condBit);
    w.i32(inst.condValue);
    w.u8(std::uint8_t(inst.tag));
}

/**
 * Parse one instruction, enforcing the invariants Circuit::validate
 * asserts (operand/parameter counts, ranges) so corrupt payloads
 * fail with SerializeError instead of tripping casq_assert.
 */
Instruction
readInstruction(ByteReader &r, std::size_t num_qubits,
                std::size_t num_clbits)
{
    Instruction inst;
    const std::uint8_t op = r.u8();
    if (op > std::uint8_t(Op::Reset))
        throw SerializeError("corrupt opcode " +
                             std::to_string(int(op)));
    inst.op = Op(op);

    const std::size_t nq = r.count(4);
    if (inst.op != Op::Barrier && nq != opNumQubits(inst.op)) {
        throw SerializeError(
            std::string("op ") + opName(inst.op) + " carries " +
            std::to_string(nq) + " qubit operand(s), expected " +
            std::to_string(opNumQubits(inst.op)));
    }
    for (std::size_t i = 0; i < nq; ++i) {
        const std::uint32_t q = r.u32();
        if (q >= num_qubits) {
            throw SerializeError(
                "qubit operand " + std::to_string(q) +
                " out of range for " + std::to_string(num_qubits) +
                "-qubit circuit");
        }
        inst.qubits.push_back(q);
    }
    if (nq == 2 && inst.qubits[0] == inst.qubits[1])
        throw SerializeError("two-qubit gate on identical qubits");

    const std::size_t np = r.count(8);
    const bool param_count_ok =
        inst.op == Op::Delay ? np == 1
                             : np == opNumParams(inst.op);
    if (!param_count_ok) {
        throw SerializeError(
            std::string("op ") + opName(inst.op) + " carries " +
            std::to_string(np) + " parameter(s), expected " +
            std::to_string(opNumParams(inst.op)));
    }
    for (std::size_t i = 0; i < np; ++i)
        inst.params.push_back(r.f64());

    inst.cbit = r.i32();
    inst.condBit = r.i32();
    inst.condValue = r.i32();
    if (inst.op == Op::Measure &&
        (inst.cbit < 0 || std::size_t(inst.cbit) >= num_clbits)) {
        throw SerializeError("measure clbit " +
                             std::to_string(inst.cbit) +
                             " out of range");
    }
    if (inst.condBit >= 0 &&
        std::size_t(inst.condBit) >= num_clbits) {
        throw SerializeError("condition clbit " +
                             std::to_string(inst.condBit) +
                             " out of range");
    }
    const std::uint8_t tag = r.u8();
    if (tag > std::uint8_t(InstTag::Compensation))
        throw SerializeError("corrupt instruction tag " +
                             std::to_string(int(tag)));
    inst.tag = InstTag(tag);
    return inst;
}

void
writeCircuit(ByteWriter &w, const LayeredCircuit &circuit)
{
    w.u32(std::uint32_t(circuit.numQubits()));
    w.u32(std::uint32_t(circuit.numClbits()));
    w.u32(std::uint32_t(circuit.layers().size()));
    for (const Layer &layer : circuit.layers()) {
        w.u8(std::uint8_t(layer.kind));
        w.u32(std::uint32_t(layer.insts.size()));
        for (const Instruction &inst : layer.insts)
            writeInstruction(w, inst);
    }
}

LayeredCircuit
readCircuit(ByteReader &r)
{
    // Statevector simulation is 2^n amplitudes; any header beyond
    // this bound is corruption, and rejecting it here also stops a
    // flipped count byte from provoking a giant allocation.
    constexpr std::size_t kMaxWidth = 4096;
    const std::size_t num_qubits = r.u32();
    const std::size_t num_clbits = r.u32();
    if (num_qubits > kMaxWidth || num_clbits > kMaxWidth) {
        throw SerializeError(
            "implausible circuit header: " +
            std::to_string(num_qubits) + " qubits / " +
            std::to_string(num_clbits) + " clbits");
    }
    LayeredCircuit circuit(num_qubits, num_clbits);
    const std::size_t num_layers = r.count(5);
    for (std::size_t li = 0; li < num_layers; ++li) {
        Layer layer;
        const std::uint8_t kind = r.u8();
        if (kind > std::uint8_t(LayerKind::Dynamic))
            throw SerializeError("corrupt layer kind " +
                                 std::to_string(int(kind)));
        layer.kind = LayerKind(kind);
        const std::size_t n = r.count(18);
        std::vector<bool> used(num_qubits, false);
        for (std::size_t i = 0; i < n; ++i) {
            Instruction inst =
                readInstruction(r, num_qubits, num_clbits);
            // addLayer asserts disjointness; check it here so a
            // corrupt payload throws instead of aborting.
            for (std::uint32_t q : inst.qubits) {
                if (used[q]) {
                    throw SerializeError(
                        "layer " + std::to_string(li) +
                        " instructions overlap on qubit " +
                        std::to_string(q));
                }
                used[q] = true;
            }
            layer.insts.push_back(std::move(inst));
        }
        circuit.addLayer(std::move(layer));
    }
    return circuit;
}

void
writeObservables(ByteWriter &w,
                 const std::vector<PauliString> &observables)
{
    w.u32(std::uint32_t(observables.size()));
    for (const PauliString &obs : observables) {
        w.u32(std::uint32_t(obs.numQubits()));
        for (std::size_t q = 0; q < obs.numQubits(); ++q)
            w.u8(std::uint8_t(obs.op(q)));
        w.u8(obs.phasePower());
    }
}

std::vector<PauliString>
readObservables(ByteReader &r, std::size_t num_qubits)
{
    std::vector<PauliString> observables;
    const std::size_t count = r.count(5);
    observables.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t n = r.count(1);
        if (n != num_qubits) {
            throw SerializeError(
                "observable " + std::to_string(i) + " acts on " +
                std::to_string(n) + " qubits, circuit has " +
                std::to_string(num_qubits));
        }
        std::vector<PauliOp> ops;
        ops.reserve(n);
        for (std::size_t q = 0; q < n; ++q) {
            const std::uint8_t op = r.u8();
            if (op > std::uint8_t(PauliOp::Z))
                throw SerializeError("corrupt Pauli op " +
                                     std::to_string(int(op)));
            ops.push_back(PauliOp(op));
        }
        const std::uint8_t phase = r.u8();
        if (phase > 3)
            throw SerializeError("corrupt Pauli phase " +
                                 std::to_string(int(phase)));
        observables.emplace_back(std::move(ops), phase);
    }
    return observables;
}

void
requireShardRange(std::uint32_t index, std::uint32_t count,
                  const char *what)
{
    if (count < 1) {
        throw SerializeError(std::string(what) +
                             ": shard count must be >= 1");
    }
    if (index >= count) {
        throw SerializeError(
            std::string(what) + ": shard index " +
            std::to_string(index) + " out of range for " +
            std::to_string(count) + " shard(s)");
    }
}

} // namespace

// ---------------------------------------------------- BackendRecipe

BackendRecipe
backendRecipeFromName(const std::string &name)
{
    if (name == "linear")
        return BackendRecipe::Linear;
    if (name == "ring")
        return BackendRecipe::Ring;
    if (name == "nazca")
        return BackendRecipe::Nazca;
    if (name == "sherbrooke")
        return BackendRecipe::Sherbrooke;
    throw SerializeError("unknown backend recipe '" + name + "'");
}

std::string
backendRecipeName(BackendRecipe recipe)
{
    switch (recipe) {
      case BackendRecipe::Linear: return "linear";
      case BackendRecipe::Ring: return "ring";
      case BackendRecipe::Nazca: return "nazca";
      case BackendRecipe::Sherbrooke: return "sherbrooke";
    }
    return "unknown";
}

// -------------------------------------------------------- ShardSpec

std::vector<std::uint8_t>
ShardSpec::encode() const
{
    ByteWriter w;
    writeMagic(w, kSpecMagic);
    w.u32(shardIndex);
    w.u32(shardCount);
    writeCircuit(w, logical);
    writeObservables(w, observables);
    w.str(strategy);
    w.boolean(twirl);
    w.boolean(lowerToNative);
    w.u8(std::uint8_t(backend));
    w.u32(backendQubits);
    w.u64(backendSeed);
    w.i32(instances);
    w.u64(compileSeed);
    w.boolean(prefixCache);
    w.i32(trajectories);
    w.u64(seed);
    w.u8(std::uint8_t(simBackend));
    encodeNoiseModel(w, noise);
    w.u8(std::uint8_t(prefixState));
    return w.take();
}

namespace {

ShardSpec
decodeSpecBody(ByteReader &r)
{
    readMagic(r, kSpecMagic, "shard-spec");
    ShardSpec spec;
    spec.shardIndex = r.u32();
    spec.shardCount = r.u32();
    requireShardRange(spec.shardIndex, spec.shardCount,
                      "shard spec");
    spec.logical = readCircuit(r);
    spec.observables =
        readObservables(r, spec.logical.numQubits());
    spec.strategy = r.str();
    if (!strategyFromName(spec.strategy)) {
        throw SerializeError("unknown strategy '" + spec.strategy +
                             "' in shard spec");
    }
    spec.twirl = r.boolean();
    spec.lowerToNative = r.boolean();
    const std::uint8_t recipe = r.u8();
    if (recipe > std::uint8_t(BackendRecipe::Sherbrooke))
        throw SerializeError("corrupt backend recipe " +
                             std::to_string(int(recipe)));
    spec.backend = BackendRecipe(recipe);
    spec.backendQubits = r.u32();
    // Same plausibility bound as the circuit header: a corrupted
    // count must fail here, not as a giant makeBackend allocation.
    if (spec.backendQubits > 4096) {
        throw SerializeError(
            "implausible backend width " +
            std::to_string(spec.backendQubits));
    }
    spec.backendSeed = r.u64();
    spec.instances = r.i32();
    if (spec.instances < 1)
        throw SerializeError("shard spec instances must be >= 1");
    spec.compileSeed = r.u64();
    spec.prefixCache = r.boolean();
    spec.trajectories = r.i32();
    if (spec.trajectories < 1)
        throw SerializeError(
            "shard spec trajectories must be >= 1");
    spec.seed = r.u64();
    const std::uint8_t sim = r.u8();
    if (sim > std::uint8_t(SimBackendKind::Stabilizer))
        throw SerializeError("corrupt simulation backend " +
                             std::to_string(int(sim)));
    spec.simBackend = SimBackendKind(sim);
    spec.noise = decodeNoiseModel(r);
    const std::uint8_t prefix = r.u8();
    if (prefix > std::uint8_t(PrefixStateMode::Off))
        throw SerializeError("corrupt prefix-state mode " +
                             std::to_string(int(prefix)));
    spec.prefixState = PrefixStateMode(prefix);
    r.requireEnd();
    return spec;
}

} // namespace

ShardSpec
ShardSpec::decode(const std::uint8_t *data, std::size_t size)
{
    ByteReader r(data, size);
    // Semantic validation errors (corrupt opcodes, bad ranges, ...)
    // are raised after the reads that exposed them succeeded; stamp
    // the reader position on them so diagnostics can name where in
    // the payload decoding stopped.
    try {
        return decodeSpecBody(r);
    } catch (SerializeError &err) {
        err.attachOffset(r.offset());
        throw;
    }
}

ShardSpec
ShardSpec::decode(const std::vector<std::uint8_t> &bytes)
{
    return decode(bytes.data(), bytes.size());
}

std::uint64_t
ShardSpec::jobFingerprint() const
{
    ShardSpec job = *this;
    job.shardIndex = 0;
    return fingerprintBytes(job.encode());
}

Backend
ShardSpec::makeBackend() const
{
    switch (backend) {
      case BackendRecipe::Linear:
        return makeFakeLinear(backendQubits, backendSeed);
      case BackendRecipe::Ring:
        return makeFakeRing(backendQubits, backendSeed);
      case BackendRecipe::Nazca:
        return makeFakeNazca(backendSeed);
      case BackendRecipe::Sherbrooke:
        return makeFakeSherbrooke(backendSeed);
    }
    throw SerializeError("corrupt backend recipe");
}

NoiseModel
ShardSpec::makeNoise() const
{
    return noise;
}

PassManager
ShardSpec::makePipeline() const
{
    const auto parsed = strategyFromName(strategy);
    if (!parsed) {
        throw SerializeError("unknown strategy '" + strategy +
                             "' in shard spec");
    }
    CompileOptions options;
    options.strategy = *parsed;
    options.twirl = twirl;
    options.lowerToNative = lowerToNative;
    return buildPipeline(options);
}

EnsembleRunOptions
ShardSpec::runOptions(int threads) const
{
    EnsembleRunOptions opts;
    opts.instances = instances;
    opts.compileSeed = compileSeed;
    opts.prefixCache = prefixCache;
    opts.trajectories = trajectories;
    opts.seed = seed;
    opts.threads = threads;
    opts.backend = simBackend;
    opts.prefixState = prefixState;
    return opts;
}

// ------------------------------------------------------ ShardResult

std::size_t
ShardResult::ownedTrajectories() const
{
    const std::size_t total = std::size_t(std::max(
        std::int32_t(0), trajectories));
    if (total <= shardIndex)
        return 0;
    return (total - shardIndex + shardCount - 1) / shardCount;
}

std::vector<std::uint8_t>
ShardResult::encode() const
{
    ByteWriter w;
    writeMagic(w, kResultMagic);
    w.u32(shardIndex);
    w.u32(shardCount);
    w.i32(trajectories);
    w.u32(observableCount);
    w.u64(jobFingerprint);
    w.u64(seed);
    w.u64(compileSeed);
    w.u32(std::uint32_t(instances.size()));
    for (std::uint32_t i : instances)
        w.u32(i);
    for (std::uint64_t f : fingerprints)
        w.u64(f);
    w.u32(std::uint32_t(slots.size()));
    for (double v : slots)
        w.f64(v);
    w.u64(prefixStateHits);
    return w.take();
}

namespace {

ShardResult
decodeResultBody(ByteReader &r)
{
    readMagic(r, kResultMagic, "shard-result");
    ShardResult result;
    result.shardIndex = r.u32();
    result.shardCount = r.u32();
    requireShardRange(result.shardIndex, result.shardCount,
                      "shard result");
    result.trajectories = r.i32();
    if (result.trajectories < 1)
        throw SerializeError(
            "shard result trajectories must be >= 1");
    result.observableCount = r.u32();
    result.jobFingerprint = r.u64();
    result.seed = r.u64();
    result.compileSeed = r.u64();
    const std::size_t num_instances = r.count(12);
    for (std::size_t i = 0; i < num_instances; ++i) {
        const std::uint32_t instance = r.u32();
        if (!result.instances.empty() &&
            instance <= result.instances.back()) {
            throw SerializeError(
                "shard result instance list is not strictly "
                "ascending");
        }
        result.instances.push_back(instance);
    }
    for (std::size_t i = 0; i < num_instances; ++i)
        result.fingerprints.push_back(r.u64());
    const std::size_t num_slots = r.count(8);
    const std::size_t expected =
        result.ownedTrajectories() * result.observableCount;
    if (num_slots != expected) {
        throw SerializeError(
            "shard result carries " + std::to_string(num_slots) +
            " slot value(s), expected " + std::to_string(expected));
    }
    result.slots.reserve(num_slots);
    for (std::size_t i = 0; i < num_slots; ++i)
        result.slots.push_back(r.f64());
    result.prefixStateHits = r.u64();
    if (result.prefixStateHits > result.ownedTrajectories()) {
        throw SerializeError(
            "shard result claims " +
            std::to_string(result.prefixStateHits) +
            " prefix-state hit(s) for " +
            std::to_string(result.ownedTrajectories()) +
            " owned trajectory(ies)");
    }
    r.requireEnd();
    return result;
}

} // namespace

ShardResult
ShardResult::decode(const std::uint8_t *data, std::size_t size)
{
    ByteReader r(data, size);
    try {
        return decodeResultBody(r);
    } catch (SerializeError &err) {
        err.attachOffset(r.offset());
        throw;
    }
}

ShardResult
ShardResult::decode(const std::vector<std::uint8_t> &bytes)
{
    return decode(bytes.data(), bytes.size());
}

// -------------------------------------------------------- execution

ShardResult
executeShard(const ShardSpec &spec, int threads)
{
    const Backend backend = spec.makeBackend();
    if (backend.numQubits() != spec.logical.numQubits()) {
        throw ShardError(
            "backend recipe builds a " +
            std::to_string(backend.numQubits()) +
            "-qubit device but the logical circuit has " +
            std::to_string(spec.logical.numQubits()) + " qubits");
    }
    for (const PauliString &obs : spec.observables) {
        if (obs.numQubits() != spec.logical.numQubits()) {
            throw ShardError(
                "observable width " +
                std::to_string(obs.numQubits()) +
                " does not match the circuit width " +
                std::to_string(spec.logical.numQubits()));
        }
    }

    PassManager pipeline = spec.makePipeline();
    SimulationEngine engine(backend, spec.makeNoise());
    ShardSlots slots = engine.runShard(
        spec.logical, pipeline, spec.observables,
        spec.runOptions(threads), spec.shardIndex, spec.shardCount);

    ShardResult result;
    result.shardIndex = spec.shardIndex;
    result.shardCount = spec.shardCount;
    result.trajectories = spec.trajectories;
    result.observableCount =
        std::uint32_t(spec.observables.size());
    result.jobFingerprint = spec.jobFingerprint();
    result.seed = spec.seed;
    result.compileSeed = spec.compileSeed;
    result.instances = std::move(slots.instances);
    result.fingerprints = std::move(slots.fingerprints);
    result.slots = std::move(slots.slots);
    result.prefixStateHits = slots.prefixStateHits;
    return result;
}

// ------------------------------------------------------------ merge

RunResult
mergeShards(const std::vector<ShardResult> &shards)
{
    if (shards.empty())
        throw ShardError("no shard results to merge");

    const ShardResult &head = shards.front();
    const std::uint32_t S = head.shardCount;
    if (shards.size() != S) {
        throw ShardError(
            "expected " + std::to_string(S) +
            " shard result(s), got " +
            std::to_string(shards.size()));
    }

    std::vector<const ShardResult *> by_index(S, nullptr);
    std::map<std::uint32_t, std::uint64_t> schedule_prints;
    for (const ShardResult &shard : shards) {
        if (shard.shardCount != S || shard.trajectories != head.trajectories ||
            shard.observableCount != head.observableCount ||
            shard.jobFingerprint != head.jobFingerprint ||
            shard.seed != head.seed ||
            shard.compileSeed != head.compileSeed) {
            throw ShardError(
                "shard " + std::to_string(shard.shardIndex) +
                " does not belong to the same job as shard " +
                std::to_string(head.shardIndex) +
                " (provenance mismatch)");
        }
        if (shard.shardIndex >= S ||
            by_index[shard.shardIndex] != nullptr) {
            throw ShardError(
                "duplicate result for shard " +
                std::to_string(shard.shardIndex));
        }
        by_index[shard.shardIndex] = &shard;

        if (shard.instances.size() != shard.fingerprints.size()) {
            throw ShardError(
                "shard " + std::to_string(shard.shardIndex) +
                " carries " +
                std::to_string(shard.fingerprints.size()) +
                " fingerprint(s) for " +
                std::to_string(shard.instances.size()) +
                " instance(s)");
        }
        for (std::size_t i = 0; i < shard.instances.size(); ++i) {
            const auto [it, inserted] = schedule_prints.emplace(
                shard.instances[i], shard.fingerprints[i]);
            if (!inserted && it->second != shard.fingerprints[i]) {
                throw ShardError(
                    "shards disagree on the schedule of instance " +
                    std::to_string(shard.instances[i]) +
                    " (fingerprint mismatch)");
            }
        }
    }

    // Scatter every shard's ordinal-major slots back into the
    // single-process trajectory order, then reduce exactly as
    // Engine::runEnsemble does.
    const std::size_t total = std::size_t(head.trajectories);
    const std::size_t K = head.observableCount;
    std::vector<double> slots(total * K, 0.0);
    for (std::uint32_t k = 0; k < S; ++k) {
        const ShardResult &shard = *by_index[k];
        const std::size_t owned = shard.ownedTrajectories();
        if (shard.slots.size() != owned * K) {
            throw ShardError(
                "shard " + std::to_string(k) + " carries " +
                std::to_string(shard.slots.size()) +
                " slot value(s), expected " +
                std::to_string(owned * K));
        }
        for (std::size_t j = 0; j < owned; ++j) {
            const std::size_t t = k + j * S;
            std::copy(shard.slots.begin() + j * K,
                      shard.slots.begin() + (j + 1) * K,
                      slots.begin() + t * K);
        }
    }
    RunResult merged = reduceTrajectorySlots(slots, total, K);
    for (const ShardResult &shard : shards)
        merged.prefixStateHits += shard.prefixStateHits;
    return merged;
}

} // namespace casq
