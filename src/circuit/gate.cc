#include "circuit/gate.hh"

#include "common/logging.hh"

namespace casq {

const char *
opName(Op op)
{
    switch (op) {
      case Op::I: return "id";
      case Op::X: return "x";
      case Op::Y: return "y";
      case Op::Z: return "z";
      case Op::H: return "h";
      case Op::S: return "s";
      case Op::Sdg: return "sdg";
      case Op::SX: return "sx";
      case Op::SXdg: return "sxdg";
      case Op::T: return "t";
      case Op::Tdg: return "tdg";
      case Op::RX: return "rx";
      case Op::RY: return "ry";
      case Op::RZ: return "rz";
      case Op::U: return "u";
      case Op::CX: return "cx";
      case Op::CZ: return "cz";
      case Op::ECR: return "ecr";
      case Op::RZZ: return "rzz";
      case Op::Can: return "can";
      case Op::Swap: return "swap";
      case Op::Delay: return "delay";
      case Op::Barrier: return "barrier";
      case Op::Measure: return "measure";
      case Op::Reset: return "reset";
    }
    casq_panic("invalid Op");
}

std::size_t
opNumQubits(Op op)
{
    switch (op) {
      case Op::CX:
      case Op::CZ:
      case Op::ECR:
      case Op::RZZ:
      case Op::Can:
      case Op::Swap:
        return 2;
      case Op::Barrier:
        return 0; // variadic
      default:
        return 1;
    }
}

std::size_t
opNumParams(Op op)
{
    switch (op) {
      case Op::RX:
      case Op::RY:
      case Op::RZ:
      case Op::RZZ:
      case Op::Delay:
        return 1;
      case Op::U:
      case Op::Can:
        return 3;
      default:
        return 0;
    }
}

bool
opIsUnitary(Op op)
{
    switch (op) {
      case Op::Delay:
      case Op::Barrier:
      case Op::Measure:
      case Op::Reset:
        return false;
      default:
        return true;
    }
}

bool
opIsTwoQubitGate(Op op)
{
    return opIsUnitary(op) && opNumQubits(op) == 2;
}

bool
opIsDiagonal(Op op)
{
    switch (op) {
      case Op::I:
      case Op::Z:
      case Op::S:
      case Op::Sdg:
      case Op::T:
      case Op::Tdg:
      case Op::RZ:
      case Op::CZ:
      case Op::RZZ:
        return true;
      default:
        return false;
    }
}

bool
opIsVirtual(Op op)
{
    switch (op) {
      case Op::I:
      case Op::Z:
      case Op::S:
      case Op::Sdg:
      case Op::T:
      case Op::Tdg:
      case Op::RZ:
        return true;
      default:
        return false;
    }
}

bool
opIsPauli(Op op)
{
    switch (op) {
      case Op::I:
      case Op::X:
      case Op::Y:
      case Op::Z:
        return true;
      default:
        return false;
    }
}

} // namespace casq
