/**
 * @file
 * ASAP scheduling of circuits into timed instruction streams, plus
 * idle-window extraction.
 *
 * The scheduled form is the input of both the trajectory simulator
 * (which injects crosstalk noise per time segment) and the CA-DD
 * pass (Algorithm 1, which fills idle windows with decoupling
 * pulses).
 */

#ifndef CASQ_CIRCUIT_SCHEDULE_HH
#define CASQ_CIRCUIT_SCHEDULE_HH

#include <map>
#include <vector>

#include "circuit/circuit.hh"

namespace casq {

/** Hardware gate durations in nanoseconds. */
struct GateDurations
{
    double oneQubit = 35.0;     //!< sx / x pulse
    double twoQubit = 500.0;    //!< ecr / cx default
    double canonical = 1500.0;  //!< native can block (3 CX equiv)
    double rzzFull = 500.0;     //!< pulse-stretched rzz at |theta|=pi/2
    double rzzMin = 50.0;       //!< shortest realizable rzz pulse
    double measure = 4000.0;    //!< readout
    double reset = 1000.0;
    double feedforward = 1150.0; //!< controller latency for cond. ops

    /**
     * Per-pair two-qubit gate durations (real devices calibrate
     * each coupler separately; the resulting echo misalignment
     * between parallel gates is a key context the paper's passes
     * handle).  Keyed by the normalized pair.
     */
    std::map<std::uint64_t, double> twoQubitOverride;

    /** Register a per-pair duration for ecr/cx/cz gates. */
    void setPairDuration(std::uint32_t a, std::uint32_t b,
                         double duration_ns);

    /** Duration of an instruction under this calibration. */
    double of(const Instruction &inst) const;
};

/** An instruction pinned to wall-clock time. */
struct TimedInstruction
{
    Instruction inst;
    double start = 0.0;
    double duration = 0.0;

    double end() const { return start + duration; }
};

/** A maximal single-qubit idle period in a scheduled circuit. */
struct IdleWindow
{
    std::uint32_t qubit = 0;
    double start = 0.0;
    double end = 0.0;

    double duration() const { return end - start; }
};

/** A circuit lowered to absolute start times. */
class ScheduledCircuit
{
  public:
    ScheduledCircuit(std::size_t num_qubits, std::size_t num_clbits)
        : _numQubits(num_qubits), _numClbits(num_clbits)
    {
    }

    std::size_t numQubits() const { return _numQubits; }
    std::size_t numClbits() const { return _numClbits; }

    const std::vector<TimedInstruction> &instructions() const
    {
        return _insts;
    }

    double totalDuration() const { return _totalDuration; }

    /** Append keeping (start, insertion) order; updates duration. */
    void add(TimedInstruction timed);

    /** Stable-sort instructions by start time. */
    void sortByStart();

    /**
     * Verify no two instructions overlap on a qubit; returns the
     * offending qubit or -1 when consistent.  Used by tests and as a
     * post-condition of the DD passes.
     */
    int findOverlap() const;

    /**
     * Per-qubit idle gaps of at least min_duration, including the
     * leading gap from t=0 and the trailing gap to totalDuration().
     */
    std::vector<IdleWindow> idleWindows(double min_duration) const;

    /** Multi-line dump with timestamps. */
    std::string toString() const;

  private:
    std::size_t _numQubits;
    std::size_t _numClbits;
    std::vector<TimedInstruction> _insts;
    double _totalDuration = 0.0;
};

/**
 * ASAP-schedule a flat circuit.  Barriers synchronize their qubits;
 * conditional instructions wait for their classical bit plus the
 * feedforward latency; virtual gates take zero time.
 */
ScheduledCircuit scheduleASAP(const Circuit &circuit,
                              const GateDurations &durations);

} // namespace casq

#endif // CASQ_CIRCUIT_SCHEDULE_HH
