/**
 * @file
 * Gate unitaries, Euler-angle decomposition (paper Eq. 4), canonical
 * two-qubit gate synthesis (paper Eq. 5 / Fig. 1d), and lowering of
 * logical circuits to the hardware-native gate set.
 */

#ifndef CASQ_CIRCUIT_UNITARY_HH
#define CASQ_CIRCUIT_UNITARY_HH

#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.hh"
#include "common/matrix.hh"

namespace casq {

/**
 * Unitary matrix of a gate op: 2x2 for single-qubit gates, 4x4 for
 * two-qubit gates with qubits[0] as the less significant index.
 */
CMat gateUnitary(Op op, const std::vector<double> &params = {});

/** Unitary of an instruction (must be a unitary op). */
CMat instructionUnitary(const Instruction &inst);

/**
 * Full 2^n x 2^n unitary of a circuit containing only unitary ops
 * (intended for tests; n is capped at 12).  Barriers are skipped.
 */
CMat circuitUnitary(const Circuit &circuit);

/**
 * Euler angles of a single-qubit unitary in the U(theta, phi,
 * lambda) convention, with the residual global phase:
 * u = e^{i phase} U(theta, phi, lambda).
 */
struct EulerAngles
{
    double theta = 0.0;
    double phi = 0.0;
    double lambda = 0.0;
    double phase = 0.0;
};

/** Decompose an arbitrary 2x2 unitary into Euler angles. */
EulerAngles eulerDecompose(const CMat &u);

/**
 * Emit the hardware realization of U(theta, phi, lambda) in the
 * {rz, sx} basis, paper Eq. (4):
 * U = Rz(phi + pi) SX Rz(theta + pi) SX Rz(lambda).
 * Appends onto `circuit` acting on qubit q.
 */
void appendU1q(Circuit &circuit, std::uint32_t q, double theta,
               double phi, double lambda);

/**
 * Attempt to factor a 4x4 unitary as kron(a, b) (a on the more
 * significant qubit).  Returns nullopt when u is entangling.
 */
std::optional<std::pair<CMat, CMat>> factorTensorProduct(
    const CMat &u, double tol = 1e-8);

/**
 * Synthesize can(alpha, beta, gamma) = exp(i(a XX + b YY + c ZZ))
 * into 3 CX gates plus single-qubit rotations (Vatan-Williams /
 * paper Fig. 1d); the result acts on qubits {0, 1} of a 2-qubit
 * circuit and equals the canonical gate up to global phase.
 */
Circuit synthesizeCan(double alpha, double beta, double gamma);

/** Options for lowering to the native gate set. */
struct TranspileOptions
{
    /**
     * Keep rzz as a native (pulse-stretched) gate instead of
     * expanding to CX - rz - CX (paper Sec. IV B).
     */
    bool nativeRzz = true;

    /** Use ECR as the native two-qubit gate where gates allow it. */
    bool preferEcr = false;
};

/**
 * Lower a logical circuit to the native set {rz, sx, x, cx/ecr,
 * rzz?, delay, measure, reset, barrier}.  Can gates expand to 3 CX;
 * generic 1q gates expand via Eq. (4).
 */
Circuit transpileToNative(const Circuit &circuit,
                          const TranspileOptions &options = {});

/**
 * Lower a standalone instruction sequence (a layer being spliced
 * into an already-lowered stream) to the native set.  Because
 * transpileToNative() rewrites instruction by instruction, lowering
 * a fragment equals lowering it as part of the whole circuit -- the
 * property the late-twirl and scheduled CA-EC passes rely on for
 * byte-identity with the twirl-first pipelines.
 */
std::vector<Instruction> transpileFragment(
    std::vector<Instruction> insts, std::size_t num_qubits,
    std::size_t num_clbits, const TranspileOptions &options = {});

/**
 * Memoizing per-instruction transpiler.  fragmentFor() returns the
 * native lowering of one instruction, computed once per distinct
 * instruction (bit-exact parameter identity) and shared afterwards;
 * splicing the cached fragments in instruction order is
 * byte-identical to transpiling the containing circuit in one call
 * (the transpileFragment() property, per instruction).
 *
 * The scheduled CA-EC pass re-lowers every layer it absorbs a
 * compensation angle into; across an ensemble the absorbed
 * parameters only differ by the twirl-frame sign flips, so the
 * distinct-instruction population is small and a shared cache
 * collapses the per-instance resynthesis (canonical blocks cost a
 * numeric 2q decomposition each) into map lookups.
 *
 * Safe for concurrent use: parallel ensemble compilation shares one
 * cache across worker threads (same locking discipline as
 * TwirlTableCache; first inserter wins, values are deterministic).
 */
class TranspileCache
{
  public:
    explicit TranspileCache(TranspileOptions options = {})
        : _options(options)
    {
    }

    const TranspileOptions &options() const { return _options; }

    /** Lowered fragment of one instruction (cached). */
    const std::vector<Instruction> &fragmentFor(
        const Instruction &inst);

  private:
    TranspileOptions _options;
    std::shared_mutex _mutex;
    std::map<std::string, std::vector<Instruction>> _fragments;
};

} // namespace casq

#endif // CASQ_CIRCUIT_UNITARY_HH
