#include "circuit/stratify.hh"

#include "common/logging.hh"

namespace casq {

bool
Layer::actsOn(std::uint32_t qubit) const
{
    for (const auto &inst : insts)
        if (inst.actsOn(qubit))
            return true;
    return false;
}

const Instruction *
Layer::gateOn(std::uint32_t qubit) const
{
    for (const auto &inst : insts)
        if (inst.actsOn(qubit))
            return &inst;
    return nullptr;
}

void
LayeredCircuit::addLayer(Layer layer)
{
    // Instructions within a layer must touch disjoint qubits.
    std::vector<bool> used(_numQubits, false);
    for (const auto &inst : layer.insts) {
        for (auto q : inst.qubits) {
            casq_assert(!used[q],
                        "layer instructions overlap on qubit q", q);
            used[q] = true;
        }
    }
    _layers.push_back(std::move(layer));
}

Circuit
LayeredCircuit::flatten() const
{
    Circuit out(_numQubits, _numClbits);
    for (std::size_t li = 0; li < _layers.size(); ++li) {
        for (const auto &inst : _layers[li].insts)
            out.append(inst);
        if (li + 1 < _layers.size())
            out.barrier();
    }
    return out;
}

std::size_t
LayeredCircuit::countTwoQubitGates() const
{
    std::size_t n = 0;
    for (const auto &layer : _layers)
        for (const auto &inst : layer.insts)
            if (opIsTwoQubitGate(inst.op))
                ++n;
    return n;
}

namespace {

LayerKind
classify(const Instruction &inst)
{
    if (inst.isConditional() || inst.op == Op::Measure ||
        inst.op == Op::Reset) {
        return LayerKind::Dynamic;
    }
    if (opIsTwoQubitGate(inst.op))
        return LayerKind::TwoQubit;
    return LayerKind::OneQubit;
}

} // namespace

LayeredCircuit
stratify(const Circuit &circuit)
{
    LayeredCircuit out(circuit.numQubits(), circuit.numClbits());
    Layer current;
    bool open = false;
    std::vector<bool> used(circuit.numQubits(), false);

    auto flush = [&]() {
        if (open && !current.insts.empty())
            out.addLayer(std::move(current));
        current = Layer{};
        open = false;
        used.assign(circuit.numQubits(), false);
    };

    for (const auto &inst : circuit.instructions()) {
        if (inst.op == Op::Barrier) {
            flush();
            continue;
        }
        const LayerKind kind = classify(inst);
        bool overlaps = false;
        for (auto q : inst.qubits)
            overlaps |= used[q];
        if (!open) {
            current.kind = kind;
            open = true;
        } else if (kind != current.kind || overlaps) {
            flush();
            current.kind = kind;
            open = true;
        }
        for (auto q : inst.qubits)
            used[q] = true;
        current.insts.push_back(inst);
    }
    flush();
    return out;
}

} // namespace casq
