/**
 * @file
 * Quantum circuit container with a fluent builder interface.
 *
 * A Circuit is an ordered instruction list over a fixed number of
 * qubits and classical bits.  Compiler passes transform circuits;
 * the scheduler lowers them to timed form for the simulator.
 */

#ifndef CASQ_CIRCUIT_CIRCUIT_HH
#define CASQ_CIRCUIT_CIRCUIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/instruction.hh"

namespace casq {

/** An ordered list of instructions on qubits and classical bits. */
class Circuit
{
  public:
    /** Create an empty circuit. */
    explicit Circuit(std::size_t num_qubits = 0,
                     std::size_t num_clbits = 0);

    std::size_t numQubits() const { return _numQubits; }
    std::size_t numClbits() const { return _numClbits; }

    const std::vector<Instruction> &instructions() const
    {
        return _insts;
    }
    std::vector<Instruction> &instructions() { return _insts; }

    std::size_t size() const { return _insts.size(); }
    bool empty() const { return _insts.empty(); }

    /** Append a fully-formed instruction (operands validated). */
    Circuit &append(Instruction inst);

    /** Append all instructions of another circuit (same width). */
    Circuit &append(const Circuit &other);

    // Fluent builders for the common gates.  All return *this.
    Circuit &i(std::uint32_t q);
    Circuit &x(std::uint32_t q);
    Circuit &y(std::uint32_t q);
    Circuit &z(std::uint32_t q);
    Circuit &h(std::uint32_t q);
    Circuit &s(std::uint32_t q);
    Circuit &sdg(std::uint32_t q);
    Circuit &sx(std::uint32_t q);
    Circuit &sxdg(std::uint32_t q);
    Circuit &t(std::uint32_t q);
    Circuit &tdg(std::uint32_t q);
    Circuit &rx(std::uint32_t q, double theta);
    Circuit &ry(std::uint32_t q, double theta);
    Circuit &rz(std::uint32_t q, double theta);
    Circuit &u(std::uint32_t q, double theta, double phi, double lam);
    Circuit &cx(std::uint32_t control, std::uint32_t target);
    Circuit &cz(std::uint32_t q0, std::uint32_t q1);
    Circuit &ecr(std::uint32_t control, std::uint32_t target);
    Circuit &rzz(std::uint32_t q0, std::uint32_t q1, double theta);
    Circuit &can(std::uint32_t q0, std::uint32_t q1, double alpha,
                 double beta, double gamma);
    Circuit &swap(std::uint32_t q0, std::uint32_t q1);
    Circuit &delay(std::uint32_t q, double duration_ns);
    Circuit &barrier();
    Circuit &barrier(std::vector<std::uint32_t> qubits);
    Circuit &measure(std::uint32_t q, int cbit);
    Circuit &reset(std::uint32_t q);

    /** Apply a Pauli gate by enum (used by twirling). */
    Circuit &pauli(std::uint32_t q, int pauli_op);

    /**
     * Make the most recently appended instruction conditional on the
     * classical bit (dynamic-circuit feedforward).
     */
    Circuit &conditionedOn(int cbit, int value = 1);

    /** Number of instructions matching a predicate-free op. */
    std::size_t countOps(Op op) const;

    /** Total number of two-qubit gates. */
    std::size_t countTwoQubitGates() const;

    /** Multi-line dump, one instruction per line. */
    std::string toString() const;

  private:
    std::size_t _numQubits = 0;
    std::size_t _numClbits = 0;
    std::vector<Instruction> _insts;

    void validate(const Instruction &inst) const;
};

} // namespace casq

#endif // CASQ_CIRCUIT_CIRCUIT_HH
