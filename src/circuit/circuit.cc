#include "circuit/circuit.hh"

#include <sstream>

#include "common/logging.hh"

namespace casq {

Circuit::Circuit(std::size_t num_qubits, std::size_t num_clbits)
    : _numQubits(num_qubits), _numClbits(num_clbits)
{
}

void
Circuit::validate(const Instruction &inst) const
{
    const std::size_t expect = opNumQubits(inst.op);
    if (inst.op != Op::Barrier) {
        casq_assert(inst.qubits.size() == expect, "op ", opName(inst.op),
                    " expects ", expect, " qubits, got ",
                    inst.qubits.size());
    }
    for (auto q : inst.qubits)
        casq_assert(q < _numQubits, "qubit q", q, " out of range for ",
                    _numQubits, "-qubit circuit");
    casq_assert(inst.params.size() == opNumParams(inst.op) ||
                inst.op == Op::Delay,
                "op ", opName(inst.op), " expects ",
                opNumParams(inst.op), " params, got ",
                inst.params.size());
    if (inst.op == Op::Measure)
        casq_assert(inst.cbit >= 0 &&
                    std::size_t(inst.cbit) < _numClbits,
                    "measure clbit out of range");
    if (inst.isConditional())
        casq_assert(std::size_t(inst.condBit) < _numClbits,
                    "condition clbit out of range");
    if (inst.qubits.size() == 2)
        casq_assert(inst.qubits[0] != inst.qubits[1],
                    "two-qubit gate on identical qubits");
}

Circuit &
Circuit::append(Instruction inst)
{
    validate(inst);
    _insts.push_back(std::move(inst));
    return *this;
}

Circuit &
Circuit::append(const Circuit &other)
{
    casq_assert(other._numQubits <= _numQubits &&
                other._numClbits <= _numClbits,
                "appended circuit is wider than the target");
    for (const auto &inst : other._insts)
        append(inst);
    return *this;
}

Circuit &
Circuit::i(std::uint32_t q)
{
    return append(Instruction(Op::I, {q}));
}

Circuit &
Circuit::x(std::uint32_t q)
{
    return append(Instruction(Op::X, {q}));
}

Circuit &
Circuit::y(std::uint32_t q)
{
    return append(Instruction(Op::Y, {q}));
}

Circuit &
Circuit::z(std::uint32_t q)
{
    return append(Instruction(Op::Z, {q}));
}

Circuit &
Circuit::h(std::uint32_t q)
{
    return append(Instruction(Op::H, {q}));
}

Circuit &
Circuit::s(std::uint32_t q)
{
    return append(Instruction(Op::S, {q}));
}

Circuit &
Circuit::sdg(std::uint32_t q)
{
    return append(Instruction(Op::Sdg, {q}));
}

Circuit &
Circuit::sx(std::uint32_t q)
{
    return append(Instruction(Op::SX, {q}));
}

Circuit &
Circuit::sxdg(std::uint32_t q)
{
    return append(Instruction(Op::SXdg, {q}));
}

Circuit &
Circuit::t(std::uint32_t q)
{
    return append(Instruction(Op::T, {q}));
}

Circuit &
Circuit::tdg(std::uint32_t q)
{
    return append(Instruction(Op::Tdg, {q}));
}

Circuit &
Circuit::rx(std::uint32_t q, double theta)
{
    return append(Instruction(Op::RX, {q}, {theta}));
}

Circuit &
Circuit::ry(std::uint32_t q, double theta)
{
    return append(Instruction(Op::RY, {q}, {theta}));
}

Circuit &
Circuit::rz(std::uint32_t q, double theta)
{
    return append(Instruction(Op::RZ, {q}, {theta}));
}

Circuit &
Circuit::u(std::uint32_t q, double theta, double phi, double lam)
{
    return append(Instruction(Op::U, {q}, {theta, phi, lam}));
}

Circuit &
Circuit::cx(std::uint32_t control, std::uint32_t target)
{
    return append(Instruction(Op::CX, {control, target}));
}

Circuit &
Circuit::cz(std::uint32_t q0, std::uint32_t q1)
{
    return append(Instruction(Op::CZ, {q0, q1}));
}

Circuit &
Circuit::ecr(std::uint32_t control, std::uint32_t target)
{
    return append(Instruction(Op::ECR, {control, target}));
}

Circuit &
Circuit::rzz(std::uint32_t q0, std::uint32_t q1, double theta)
{
    return append(Instruction(Op::RZZ, {q0, q1}, {theta}));
}

Circuit &
Circuit::can(std::uint32_t q0, std::uint32_t q1, double alpha,
             double beta, double gamma)
{
    return append(Instruction(Op::Can, {q0, q1},
                              {alpha, beta, gamma}));
}

Circuit &
Circuit::swap(std::uint32_t q0, std::uint32_t q1)
{
    return append(Instruction(Op::Swap, {q0, q1}));
}

Circuit &
Circuit::delay(std::uint32_t q, double duration_ns)
{
    casq_assert(duration_ns >= 0.0, "negative delay duration");
    return append(Instruction(Op::Delay, {q}, {duration_ns}));
}

Circuit &
Circuit::barrier()
{
    std::vector<std::uint32_t> all(_numQubits);
    for (std::size_t q = 0; q < _numQubits; ++q)
        all[q] = std::uint32_t(q);
    return barrier(std::move(all));
}

Circuit &
Circuit::barrier(std::vector<std::uint32_t> qubits)
{
    return append(Instruction(Op::Barrier, std::move(qubits)));
}

Circuit &
Circuit::measure(std::uint32_t q, int cbit)
{
    Instruction inst(Op::Measure, {q});
    inst.cbit = cbit;
    return append(std::move(inst));
}

Circuit &
Circuit::reset(std::uint32_t q)
{
    return append(Instruction(Op::Reset, {q}));
}

Circuit &
Circuit::pauli(std::uint32_t q, int pauli_op)
{
    static const Op ops[] = {Op::I, Op::X, Op::Y, Op::Z};
    casq_assert(pauli_op >= 0 && pauli_op < 4, "invalid Pauli index");
    return append(Instruction(ops[pauli_op], {q}));
}

Circuit &
Circuit::conditionedOn(int cbit, int value)
{
    casq_assert(!_insts.empty(), "conditionedOn with no instruction");
    casq_assert(std::size_t(cbit) < _numClbits,
                "condition clbit out of range");
    _insts.back().condBit = cbit;
    _insts.back().condValue = value;
    return *this;
}

std::size_t
Circuit::countOps(Op op) const
{
    std::size_t n = 0;
    for (const auto &inst : _insts)
        if (inst.op == op)
            ++n;
    return n;
}

std::size_t
Circuit::countTwoQubitGates() const
{
    std::size_t n = 0;
    for (const auto &inst : _insts)
        if (opIsTwoQubitGate(inst.op))
            ++n;
    return n;
}

std::string
Circuit::toString() const
{
    std::ostringstream os;
    os << "circuit(" << _numQubits << " qubits, " << _numClbits
       << " clbits):\n";
    for (const auto &inst : _insts)
        os << "  " << inst.toString() << "\n";
    return os.str();
}

} // namespace casq
