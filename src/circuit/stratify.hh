/**
 * @file
 * Stratification of circuits into layers of single-qubit and
 * two-qubit gates (paper Sec. III A, Fig. 2).
 *
 * Error-mitigation protocols such as PEC/PEA arrange circuits into
 * alternating layers; the twirling and CA-EC passes operate on this
 * layered form, and flatten() re-inserts barriers so the scheduler
 * preserves layer alignment (which makes the compiler's per-layer
 * duration model match the simulator timeline exactly).
 */

#ifndef CASQ_CIRCUIT_STRATIFY_HH
#define CASQ_CIRCUIT_STRATIFY_HH

#include <vector>

#include "circuit/circuit.hh"

namespace casq {

/** Classification of a circuit layer. */
enum class LayerKind
{
    OneQubit, //!< only single-qubit unitaries
    TwoQubit, //!< only two-qubit unitaries (disjoint qubits)
    Dynamic,  //!< measurement / reset / conditional instructions
};

/** One stratum of the layered circuit. */
struct Layer
{
    LayerKind kind = LayerKind::OneQubit;
    std::vector<Instruction> insts;

    /** True if any instruction acts on the qubit. */
    bool actsOn(std::uint32_t qubit) const;

    /**
     * The two-qubit instruction acting on the qubit, or nullptr.
     * Valid for TwoQubit layers.
     */
    const Instruction *gateOn(std::uint32_t qubit) const;
};

/** A circuit organized as an ordered list of disjoint layers. */
class LayeredCircuit
{
  public:
    LayeredCircuit(std::size_t num_qubits, std::size_t num_clbits)
        : _numQubits(num_qubits), _numClbits(num_clbits)
    {
    }

    std::size_t numQubits() const { return _numQubits; }
    std::size_t numClbits() const { return _numClbits; }

    std::vector<Layer> &layers() { return _layers; }
    const std::vector<Layer> &layers() const { return _layers; }

    /** Append a layer (instruction qubits must be disjoint). */
    void addLayer(Layer layer);

    /**
     * Lower back to a flat circuit with barriers between layers so
     * scheduling preserves the layer alignment.
     */
    Circuit flatten() const;

    /** Sum of two-qubit gates over all layers. */
    std::size_t countTwoQubitGates() const;

  private:
    std::size_t _numQubits;
    std::size_t _numClbits;
    std::vector<Layer> _layers;
};

/**
 * Greedily batch a flat circuit into layers: consecutive compatible
 * instructions of the same kind with disjoint qubits share a layer;
 * barriers force a layer boundary.  Delays are treated as
 * single-qubit placeholders.
 */
LayeredCircuit stratify(const Circuit &circuit);

} // namespace casq

#endif // CASQ_CIRCUIT_STRATIFY_HH
