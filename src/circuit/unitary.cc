#include "circuit/unitary.hh"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/logging.hh"
#include "pauli/pauli.hh"

namespace casq {

namespace {

constexpr double kPi = 3.14159265358979323846;
const Complex kI{0.0, 1.0};

CMat
rzMatrix(double theta)
{
    return CMat::diagonal({std::exp(-kI * theta * 0.5),
                           std::exp(kI * theta * 0.5)});
}

CMat
rxMatrix(double theta)
{
    const double c = std::cos(theta / 2), s = std::sin(theta / 2);
    return CMat{{c, -kI * s}, {-kI * s, c}};
}

CMat
ryMatrix(double theta)
{
    const double c = std::cos(theta / 2), s = std::sin(theta / 2);
    return CMat{{c, -s}, {s, c}};
}

CMat
uMatrix(double theta, double phi, double lam)
{
    const double c = std::cos(theta / 2), s = std::sin(theta / 2);
    return CMat{{c, -std::exp(kI * lam) * s},
                {std::exp(kI * phi) * s,
                 std::exp(kI * (phi + lam)) * c}};
}

/** exp(i angle P(x)P) = cos I + i sin P(x)P for a Pauli P. */
CMat
expiPP(double angle, PauliOp p)
{
    const CMat pp = kron(pauliMatrix(p), pauliMatrix(p));
    return CMat::identity(4) * Complex(std::cos(angle), 0.0) +
           pp * (kI * std::sin(angle));
}

CMat
canMatrix(double alpha, double beta, double gamma)
{
    return expiPP(alpha, PauliOp::X) * expiPP(beta, PauliOp::Y) *
           expiPP(gamma, PauliOp::Z);
}

} // namespace

CMat
gateUnitary(Op op, const std::vector<double> &params)
{
    const double s2 = 1.0 / std::sqrt(2.0);
    switch (op) {
      case Op::I:
        return CMat::identity(2);
      case Op::X:
        return pauliMatrix(PauliOp::X);
      case Op::Y:
        return pauliMatrix(PauliOp::Y);
      case Op::Z:
        return pauliMatrix(PauliOp::Z);
      case Op::H:
        return CMat{{s2, s2}, {s2, -s2}};
      case Op::S:
        return CMat::diagonal({1.0, kI});
      case Op::Sdg:
        return CMat::diagonal({1.0, -kI});
      case Op::T:
        return CMat::diagonal({1.0, std::exp(kI * kPi / 4.0)});
      case Op::Tdg:
        return CMat::diagonal({1.0, std::exp(-kI * kPi / 4.0)});
      case Op::SX:
        return CMat{{0.5 + 0.5 * kI, 0.5 - 0.5 * kI},
                    {0.5 - 0.5 * kI, 0.5 + 0.5 * kI}};
      case Op::SXdg:
        return CMat{{0.5 - 0.5 * kI, 0.5 + 0.5 * kI},
                    {0.5 + 0.5 * kI, 0.5 - 0.5 * kI}};
      case Op::RX:
        return rxMatrix(params.at(0));
      case Op::RY:
        return ryMatrix(params.at(0));
      case Op::RZ:
        return rzMatrix(params.at(0));
      case Op::U:
        return uMatrix(params.at(0), params.at(1), params.at(2));
      case Op::CX:
        // qubits[0] (less significant bit) is the control.
        return CMat{{1, 0, 0, 0},
                    {0, 0, 0, 1},
                    {0, 0, 1, 0},
                    {0, 1, 0, 0}};
      case Op::CZ:
        return CMat::diagonal({1.0, 1.0, 1.0, -1.0});
      case Op::ECR:
        // Echoed cross-resonance, qubits[0] = control (Qiskit
        // convention, little-endian).
        return CMat{{0, s2, 0, kI * s2},
                    {s2, 0, -kI * s2, 0},
                    {0, kI * s2, 0, s2},
                    {-kI * s2, 0, s2, 0}};
      case Op::RZZ: {
        const Complex m = std::exp(-kI * params.at(0) * 0.5);
        const Complex p = std::exp(kI * params.at(0) * 0.5);
        return CMat::diagonal({m, p, p, m});
      }
      case Op::Can:
        return canMatrix(params.at(0), params.at(1), params.at(2));
      case Op::Swap:
        return CMat{{1, 0, 0, 0},
                    {0, 0, 1, 0},
                    {0, 1, 0, 0},
                    {0, 0, 0, 1}};
      default:
        casq_panic("gateUnitary on non-unitary op ", opName(op));
    }
}

CMat
instructionUnitary(const Instruction &inst)
{
    return gateUnitary(inst.op, inst.params);
}

namespace {

/** Apply a 2x2 gate to qubit q of each column of the full matrix. */
void
applyOneQubit(std::vector<Complex> &m, std::size_t dim, const CMat &u,
              std::size_t q)
{
    const std::size_t mask = std::size_t(1) << q;
    const Complex u00 = u(0, 0), u01 = u(0, 1);
    const Complex u10 = u(1, 0), u11 = u(1, 1);
    for (std::size_t col = 0; col < dim; ++col) {
        for (std::size_t i = 0; i < dim; ++i) {
            if (i & mask)
                continue;
            Complex &a = m[i * dim + col];
            Complex &b = m[(i | mask) * dim + col];
            const Complex a0 = a, b0 = b;
            a = u00 * a0 + u01 * b0;
            b = u10 * a0 + u11 * b0;
        }
    }
}

/** Apply a 4x4 gate (q0 = less significant operand). */
void
applyTwoQubit(std::vector<Complex> &m, std::size_t dim, const CMat &u,
              std::size_t q0, std::size_t q1)
{
    const std::size_t m0 = std::size_t(1) << q0;
    const std::size_t m1 = std::size_t(1) << q1;
    for (std::size_t col = 0; col < dim; ++col) {
        for (std::size_t i = 0; i < dim; ++i) {
            if ((i & m0) || (i & m1))
                continue;
            const std::size_t idx[4] = {i, i | m0, i | m1,
                                        i | m0 | m1};
            Complex v[4];
            for (int k = 0; k < 4; ++k)
                v[k] = m[idx[k] * dim + col];
            for (int r = 0; r < 4; ++r) {
                Complex acc{};
                for (int k = 0; k < 4; ++k)
                    acc += u(r, k) * v[k];
                m[idx[r] * dim + col] = acc;
            }
        }
    }
}

} // namespace

CMat
circuitUnitary(const Circuit &circuit)
{
    const std::size_t n = circuit.numQubits();
    casq_assert(n <= 12, "circuitUnitary capped at 12 qubits");
    const std::size_t dim = std::size_t(1) << n;
    std::vector<Complex> m(dim * dim);
    for (std::size_t i = 0; i < dim; ++i)
        m[i * dim + i] = 1.0;

    for (const auto &inst : circuit.instructions()) {
        if (inst.op == Op::Barrier || inst.op == Op::Delay ||
            inst.op == Op::I)
            continue;
        casq_assert(opIsUnitary(inst.op) && !inst.isConditional(),
                    "circuitUnitary on non-unitary instruction ",
                    inst.toString());
        const CMat u = instructionUnitary(inst);
        if (inst.qubits.size() == 1)
            applyOneQubit(m, dim, u, inst.qubits[0]);
        else
            applyTwoQubit(m, dim, u, inst.qubits[0], inst.qubits[1]);
    }

    CMat out(dim, dim);
    for (std::size_t i = 0; i < dim; ++i)
        for (std::size_t j = 0; j < dim; ++j)
            out(i, j) = m[i * dim + j];
    return out;
}

EulerAngles
eulerDecompose(const CMat &u)
{
    casq_assert(u.rows() == 2 && u.cols() == 2 && u.isUnitary(1e-7),
                "eulerDecompose needs a 2x2 unitary");
    EulerAngles e;
    const double c = std::abs(u(0, 0));
    const double s = std::abs(u(1, 0));
    e.theta = 2.0 * std::atan2(s, c);
    const double tol = 1e-10;
    if (s < tol) {
        // Diagonal: only phi + lambda is defined.
        e.phase = std::arg(u(0, 0));
        e.phi = 0.0;
        e.lambda = std::arg(u(1, 1)) - e.phase;
    } else if (c < tol) {
        // Anti-diagonal: only phi - lambda is defined.
        e.phase = 0.0;
        e.phi = std::arg(u(1, 0));
        e.lambda = std::arg(-u(0, 1));
        // Fold the global phase so u00-entry convention holds.
        e.phase = 0.0;
    } else {
        e.phase = std::arg(u(0, 0));
        e.phi = std::arg(u(1, 0)) - e.phase;
        e.lambda = std::arg(-u(0, 1)) - e.phase;
    }
    return e;
}

void
appendU1q(Circuit &circuit, std::uint32_t q, double theta, double phi,
          double lambda)
{
    auto near = [](double a, double b) {
        double d = std::fmod(std::abs(a - b), 2.0 * kPi);
        if (d > kPi)
            d = 2.0 * kPi - d;
        return d < 1e-12;
    };
    if (near(theta, 0.0)) {
        const double total = phi + lambda;
        if (!near(total, 0.0))
            circuit.rz(q, total);
        return;
    }
    // Candidate one-pulse form for theta = pi/2:
    // U(pi/2, phi, lambda) ~ Rz(phi + pi/2) SX Rz(lambda - pi/2);
    // verified numerically before use so the identity is safe.
    if (near(theta, kPi / 2.0)) {
        const CMat cand = rzMatrix(phi + kPi / 2.0) *
                          gateUnitary(Op::SX) *
                          rzMatrix(lambda - kPi / 2.0);
        if (cand.equalUpToGlobalPhase(uMatrix(theta, phi, lambda),
                                      1e-9)) {
            circuit.rz(q, lambda - kPi / 2.0);
            circuit.sx(q);
            circuit.rz(q, phi + kPi / 2.0);
            return;
        }
    }
    // General ZXZXZ form, paper Eq. (4).
    circuit.rz(q, lambda);
    circuit.sx(q);
    circuit.rz(q, theta + kPi);
    circuit.sx(q);
    circuit.rz(q, phi + kPi);
}

std::optional<std::pair<CMat, CMat>>
factorTensorProduct(const CMat &u, double tol)
{
    casq_assert(u.rows() == 4 && u.cols() == 4,
                "factorTensorProduct needs a 4x4 matrix");
    // Find the largest block entry to anchor the factorization.
    std::size_t bi = 0, bj = 0, bk = 0, bl = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            for (std::size_t k = 0; k < 2; ++k)
                for (std::size_t l = 0; l < 2; ++l) {
                    const double mag =
                        std::abs(u(2 * i + k, 2 * j + l));
                    if (mag > best) {
                        best = mag;
                        bi = i;
                        bj = j;
                        bk = k;
                        bl = l;
                    }
                }
    if (best < tol)
        return std::nullopt;

    // b_raw = A(bi,bj) * B; normalize so that B is unitary.
    CMat b(2, 2);
    for (std::size_t k = 0; k < 2; ++k)
        for (std::size_t l = 0; l < 2; ++l)
            b(k, l) = u(2 * bi + k, 2 * bj + l);
    const Complex det = b(0, 0) * b(1, 1) - b(0, 1) * b(1, 0);
    if (std::abs(det) < tol * tol)
        return std::nullopt;
    const double scale = std::sqrt(std::abs(det));
    for (std::size_t k = 0; k < 2; ++k)
        for (std::size_t l = 0; l < 2; ++l)
            b(k, l) /= scale;

    CMat a(2, 2);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            a(i, j) = u(2 * i + bk, 2 * j + bl) / b(bk, bl);

    if (!kron(a, b).approxEqual(u, 1e-6))
        return std::nullopt;
    if (!a.isUnitary(1e-6) || !b.isUnitary(1e-6))
        return std::nullopt;
    return std::make_pair(a, b);
}

Circuit
synthesizeCan(double alpha, double beta, double gamma)
{
    // Exact algebraic form.  Conjugating by CX(c=1, t=0) maps
    // XX -> X1, YY -> -Z0 X1, ZZ -> Z0, so
    //   can = CX10 . H1 . Phi . H1 . CX10,
    // with the diagonal Phi = exp(i(a Z1 + c Z0 - b Z0 Z1))
    //   = Rz1(-2a) Rz0(-2c) [CX01 Rz1(2b) CX01].
    Circuit qc(2);
    qc.cx(1, 0);
    qc.h(1);
    qc.cx(0, 1);
    qc.rz(1, 2.0 * beta);
    qc.cx(0, 1);
    qc.rz(0, -2.0 * gamma);
    qc.rz(1, -2.0 * alpha);
    qc.h(1);
    qc.cx(1, 0);
    return qc;
}

namespace {

/** Remap a 2-qubit fragment onto (q0, q1) of a wider circuit. */
void
appendRemapped(Circuit &out, const Circuit &frag, std::uint32_t q0,
               std::uint32_t q1, InstTag tag)
{
    for (Instruction inst : frag.instructions()) {
        for (auto &q : inst.qubits)
            q = (q == 0) ? q0 : q1;
        if (tag != InstTag::None)
            inst.tag = tag;
        out.append(std::move(inst));
    }
}

void
appendEuler(Circuit &out, std::uint32_t q, const CMat &u)
{
    const EulerAngles e = eulerDecompose(u);
    appendU1q(out, q, e.theta, e.phi, e.lambda);
}

} // namespace

Circuit
transpileToNative(const Circuit &circuit, const TranspileOptions &opts)
{
    Circuit out(circuit.numQubits(), circuit.numClbits());
    for (const auto &inst : circuit.instructions()) {
        const auto q = inst.qubits;
        switch (inst.op) {
          case Op::I:
            break;
          case Op::Z:
            out.rz(q[0], kPi);
            break;
          case Op::S:
            out.rz(q[0], kPi / 2.0);
            break;
          case Op::Sdg:
            out.rz(q[0], -kPi / 2.0);
            break;
          case Op::T:
            out.rz(q[0], kPi / 4.0);
            break;
          case Op::Tdg:
            out.rz(q[0], -kPi / 4.0);
            break;
          case Op::H:
            out.rz(q[0], kPi / 2.0);
            out.sx(q[0]);
            out.rz(q[0], kPi / 2.0);
            break;
          case Op::Y:
            out.rz(q[0], kPi);
            out.x(q[0]);
            break;
          case Op::SXdg:
            out.rz(q[0], kPi);
            out.sx(q[0]);
            out.rz(q[0], kPi);
            break;
          case Op::RX:
            appendU1q(out, q[0], inst.params[0], -kPi / 2.0,
                      kPi / 2.0);
            break;
          case Op::RY:
            appendU1q(out, q[0], inst.params[0], 0.0, 0.0);
            break;
          case Op::U:
            appendU1q(out, q[0], inst.params[0], inst.params[1],
                      inst.params[2]);
            break;
          case Op::CZ:
            out.rz(q[1], kPi / 2.0);
            out.sx(q[1]);
            out.rz(q[1], kPi / 2.0);
            out.cx(q[0], q[1]);
            out.rz(q[1], kPi / 2.0);
            out.sx(q[1]);
            out.rz(q[1], kPi / 2.0);
            break;
          case Op::Swap:
            out.cx(q[0], q[1]);
            out.cx(q[1], q[0]);
            out.cx(q[0], q[1]);
            break;
          case Op::RZZ:
            if (opts.nativeRzz) {
                out.append(inst);
            } else {
                out.cx(q[0], q[1]);
                out.rz(q[1], inst.params[0]);
                out.cx(q[0], q[1]);
            }
            break;
          case Op::Can:
            appendRemapped(out,
                           synthesizeCan(inst.params[0],
                                         inst.params[1],
                                         inst.params[2]),
                           q[0], q[1], inst.tag);
            break;
          default:
            out.append(inst);
            break;
        }
    }
    // Recursively lower H gates introduced by Can expansion.
    bool needs_pass = false;
    for (const auto &inst : out.instructions())
        if (inst.op == Op::H || inst.op == Op::Can)
            needs_pass = true;
    if (needs_pass)
        return transpileToNative(out, opts);
    (void)appendEuler; // reserved for future ECR lowering
    return out;
}

std::vector<Instruction>
transpileFragment(std::vector<Instruction> insts,
                  std::size_t num_qubits, std::size_t num_clbits,
                  const TranspileOptions &options)
{
    Circuit staging(num_qubits, num_clbits);
    for (Instruction &inst : insts)
        staging.append(std::move(inst));
    return std::move(
        transpileToNative(staging, options).instructions());
}

namespace {

/**
 * Bit-exact identity of an instruction: two instructions map to the
 * same key iff every field -- including the raw parameter bits --
 * is equal, so a cache hit returns exactly the fragment a fresh
 * transpilation would produce.
 */
std::string
fragmentKey(const Instruction &inst)
{
    std::string key;
    key.reserve(16 + 4 * inst.qubits.size() +
                8 * inst.params.size());
    auto put = [&key](const void *data, std::size_t size) {
        key.append(static_cast<const char *>(data), size);
    };
    const std::int32_t head[] = {std::int32_t(inst.op),
                                 std::int32_t(inst.tag),
                                 inst.cbit, inst.condBit,
                                 inst.condValue,
                                 std::int32_t(inst.qubits.size())};
    put(head, sizeof(head));
    for (std::uint32_t q : inst.qubits)
        put(&q, sizeof(q));
    for (double p : inst.params)
        put(&p, sizeof(p)); // raw bits: -0.0 != 0.0 is fine (miss)
    return key;
}

} // namespace

const std::vector<Instruction> &
TranspileCache::fragmentFor(const Instruction &inst)
{
    const std::string key = fragmentKey(inst);
    {
        std::shared_lock<std::shared_mutex> lock(_mutex);
        const auto it = _fragments.find(key);
        if (it != _fragments.end())
            return it->second;
    }
    // Compute outside any lock; the first inserter wins (the value
    // is a deterministic function of the key, so ties are equal).
    std::uint32_t max_qubit = 0;
    for (std::uint32_t q : inst.qubits)
        max_qubit = std::max(max_qubit, q);
    const int max_clbit = std::max(inst.cbit, inst.condBit);
    std::vector<Instruction> fragment = transpileFragment(
        {inst}, std::size_t(max_qubit) + 1,
        std::size_t(std::max(max_clbit, 0)) + 1, _options);
    std::unique_lock<std::shared_mutex> lock(_mutex);
    return _fragments.emplace(key, std::move(fragment))
        .first->second;
}

} // namespace casq
