/**
 * @file
 * Gate opcodes and static gate metadata.
 *
 * The native hardware set modelled after IBM cross-resonance devices
 * is {rz, sx, x, ecr, measure, delay, reset}; rz is virtual (zero
 * duration, implemented as a frame change, paper Sec. IV B).  The
 * remaining opcodes are logical-level conveniences that the
 * transpiler lowers to the native set.
 */

#ifndef CASQ_CIRCUIT_GATE_HH
#define CASQ_CIRCUIT_GATE_HH

#include <cstddef>
#include <string>

namespace casq {

/** Operation codes for circuit instructions. */
enum class Op
{
    // Single-qubit unitaries.
    I,
    X,
    Y,
    Z,
    H,
    S,
    Sdg,
    SX,
    SXdg,
    T,
    Tdg,
    RX,
    RY,
    RZ,
    U,    //!< U(theta, phi, lambda), paper Eq. (4) Euler form

    // Two-qubit unitaries.
    CX,   //!< qubits[0] = control, qubits[1] = target
    CZ,
    ECR,  //!< echoed cross resonance; qubits[0] = control
    RZZ,  //!< exp(-i theta/2 Z(x)Z); native pulse-stretched version
    Can,  //!< exp(+i(a XX + b YY + c ZZ)), paper Eq. (5)
    Swap,

    // Non-unitary / timing.
    Delay,    //!< params[0] = duration in ns
    Barrier,
    Measure,  //!< writes to clbits[0]
    Reset,
};

/** Printable lower-case mnemonic, e.g. "ecr". */
const char *opName(Op op);

/** Number of qubit operands (Barrier is variadic and reports 0). */
std::size_t opNumQubits(Op op);

/** Number of floating-point parameters. */
std::size_t opNumParams(Op op);

/** True for gates that implement a unitary (not delay/measure/...). */
bool opIsUnitary(Op op);

/** True for two-qubit unitary gates. */
bool opIsTwoQubitGate(Op op);

/**
 * True for gates that are diagonal in the computational basis; these
 * commute with Z-type crosstalk errors, which Algorithm 2 exploits.
 */
bool opIsDiagonal(Op op);

/**
 * True for gates executed as virtual frame changes with zero duration
 * and zero error (rz and its diagonal Clifford specializations).
 */
bool opIsVirtual(Op op);

/** True for single-qubit Pauli gates (used by twirl bookkeeping). */
bool opIsPauli(Op op);

} // namespace casq

#endif // CASQ_CIRCUIT_GATE_HH
