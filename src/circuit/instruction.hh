/**
 * @file
 * A single circuit instruction: opcode, qubit/clbit operands,
 * parameters, optional classical condition, and an annotation used by
 * the compiler passes to tag inserted gates (dynamical-decoupling
 * pulses, twirl Paulis, compensation rotations).
 */

#ifndef CASQ_CIRCUIT_INSTRUCTION_HH
#define CASQ_CIRCUIT_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.hh"

namespace casq {

/** Provenance tag for instructions inserted by compiler passes. */
enum class InstTag : std::uint8_t
{
    None = 0,     //!< part of the user's logical circuit
    DD,           //!< dynamical-decoupling pulse
    Twirl,        //!< Pauli-twirl gate
    Compensation, //!< error-compensation rotation (CA-EC)
};

/** A single operation on qubits (and possibly classical bits). */
struct Instruction
{
    Op op = Op::I;
    std::vector<std::uint32_t> qubits;
    std::vector<double> params;

    /** Classical bit written by Measure; unused otherwise. */
    int cbit = -1;

    /**
     * If >= 0, the instruction only executes when classical bit
     * condBit equals condValue (dynamic-circuit feedforward).
     */
    int condBit = -1;
    int condValue = 1;

    InstTag tag = InstTag::None;

    Instruction() = default;

    Instruction(Op o, std::vector<std::uint32_t> qs,
                std::vector<double> ps = {})
        : op(o), qubits(std::move(qs)), params(std::move(ps))
    {
    }

    /** Duration parameter of a Delay instruction. */
    double delayDuration() const;

    /** True when this instruction carries a classical condition. */
    bool isConditional() const { return condBit >= 0; }

    /** Acts on the given qubit? */
    bool actsOn(std::uint32_t qubit) const;

    /** e.g. "ecr q1, q2" or "rz(0.25) q0 [comp]". */
    std::string toString() const;
};

} // namespace casq

#endif // CASQ_CIRCUIT_INSTRUCTION_HH
