#include "circuit/schedule.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace casq {

namespace {

std::uint64_t
pairKey(std::uint32_t a, std::uint32_t b)
{
    if (a > b)
        std::swap(a, b);
    return (std::uint64_t(a) << 32) | b;
}

} // namespace

void
GateDurations::setPairDuration(std::uint32_t a, std::uint32_t b,
                               double duration_ns)
{
    twoQubitOverride[pairKey(a, b)] = duration_ns;
}

double
GateDurations::of(const Instruction &inst) const
{
    if (opIsVirtual(inst.op))
        return 0.0;
    switch (inst.op) {
      case Op::Delay:
        return inst.delayDuration();
      case Op::Barrier:
        return 0.0;
      case Op::Measure:
        return measure;
      case Op::Reset:
        return reset;
      case Op::Can: {
        // A canonical block is three echoed two-qubit gates; its
        // length inherits the pair's calibrated gate length.
        auto it = twoQubitOverride.find(
            pairKey(inst.qubits[0], inst.qubits[1]));
        if (it != twoQubitOverride.end())
            return canonical * it->second / twoQubit;
        return canonical;
      }
      case Op::RZZ: {
        // Pulse stretching: duration scales with the rotation angle
        // (paper Sec. IV B), with a floor for the shortest pulse.
        constexpr double kHalfPi = 1.57079632679489661923;
        double theta = std::fmod(std::abs(inst.params[0]),
                                 2.0 * 3.14159265358979323846);
        if (theta > 3.14159265358979323846)
            theta = 2.0 * 3.14159265358979323846 - theta;
        return std::max(rzzMin, rzzFull * theta / kHalfPi);
      }
      default:
        if (opNumQubits(inst.op) == 2) {
            auto it = twoQubitOverride.find(
                pairKey(inst.qubits[0], inst.qubits[1]));
            return it != twoQubitOverride.end() ? it->second
                                                : twoQubit;
        }
        return oneQubit;
    }
}

void
ScheduledCircuit::add(TimedInstruction timed)
{
    _totalDuration = std::max(_totalDuration, timed.end());
    _insts.push_back(std::move(timed));
}

void
ScheduledCircuit::sortByStart()
{
    std::stable_sort(_insts.begin(), _insts.end(),
                     [](const TimedInstruction &a,
                        const TimedInstruction &b) {
                         return a.start < b.start;
                     });
}

int
ScheduledCircuit::findOverlap() const
{
    // Gather per-qubit busy intervals and check pairwise overlap.
    std::map<std::uint32_t, std::vector<std::pair<double, double>>>
        busy;
    for (const auto &t : _insts) {
        // Delays are idle time: DD pulses may be placed into them.
        if (t.inst.op == Op::Barrier || t.inst.op == Op::Delay ||
            t.duration <= 0.0) {
            continue;
        }
        for (auto q : t.inst.qubits)
            busy[q].emplace_back(t.start, t.end());
    }
    for (auto &[qubit, spans] : busy) {
        std::sort(spans.begin(), spans.end());
        for (std::size_t i = 1; i < spans.size(); ++i) {
            if (spans[i].first < spans[i - 1].second - 1e-9)
                return int(qubit);
        }
    }
    return -1;
}

std::vector<IdleWindow>
ScheduledCircuit::idleWindows(double min_duration) const
{
    std::vector<std::vector<std::pair<double, double>>> busy(
        _numQubits);
    for (const auto &t : _insts) {
        if (t.inst.op == Op::Barrier || t.inst.op == Op::Delay)
            continue;
        for (auto q : t.inst.qubits)
            busy[q].emplace_back(t.start, t.end());
    }
    std::vector<IdleWindow> windows;
    for (std::uint32_t q = 0; q < _numQubits; ++q) {
        auto &spans = busy[q];
        std::sort(spans.begin(), spans.end());
        double cursor = 0.0;
        for (const auto &[s, e] : spans) {
            if (s - cursor >= min_duration)
                windows.push_back(IdleWindow{q, cursor, s});
            cursor = std::max(cursor, e);
        }
        if (_totalDuration - cursor >= min_duration)
            windows.push_back(IdleWindow{q, cursor, _totalDuration});
    }
    return windows;
}

std::string
ScheduledCircuit::toString() const
{
    std::ostringstream os;
    os << "scheduled(" << _numQubits << " qubits, duration "
       << _totalDuration << " ns):\n";
    for (const auto &t : _insts) {
        os << "  [" << t.start << ", " << t.end() << ") "
           << t.inst.toString() << "\n";
    }
    return os.str();
}

ScheduledCircuit
scheduleASAP(const Circuit &circuit, const GateDurations &durations)
{
    ScheduledCircuit out(circuit.numQubits(), circuit.numClbits());
    std::vector<double> qubit_time(circuit.numQubits(), 0.0);
    std::vector<double> clbit_time(circuit.numClbits(), 0.0);

    for (const auto &inst : circuit.instructions()) {
        if (inst.op == Op::Barrier) {
            const auto &qs = inst.qubits;
            double sync = 0.0;
            if (qs.empty()) {
                for (double t : qubit_time)
                    sync = std::max(sync, t);
                for (auto &t : qubit_time)
                    t = sync;
            } else {
                for (auto q : qs)
                    sync = std::max(sync, qubit_time[q]);
                for (auto q : qs)
                    qubit_time[q] = sync;
            }
            continue;
        }
        double start = 0.0;
        for (auto q : inst.qubits)
            start = std::max(start, qubit_time[q]);
        if (inst.isConditional()) {
            start = std::max(start, clbit_time[inst.condBit] +
                                        durations.feedforward);
        }
        const double dur = durations.of(inst);
        for (auto q : inst.qubits)
            qubit_time[q] = start + dur;
        if (inst.op == Op::Measure)
            clbit_time[inst.cbit] = start + dur;
        out.add(TimedInstruction{inst, start, dur});
    }
    out.sortByStart();
    return out;
}

} // namespace casq
