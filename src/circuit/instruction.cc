#include "circuit/instruction.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace casq {

double
Instruction::delayDuration() const
{
    casq_assert(op == Op::Delay && params.size() == 1,
                "delayDuration on non-delay instruction");
    return params[0];
}

bool
Instruction::actsOn(std::uint32_t qubit) const
{
    return std::find(qubits.begin(), qubits.end(), qubit) !=
           qubits.end();
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opName(op);
    if (!params.empty()) {
        os << "(";
        for (std::size_t i = 0; i < params.size(); ++i)
            os << (i ? ", " : "") << params[i];
        os << ")";
    }
    for (std::size_t i = 0; i < qubits.size(); ++i)
        os << (i ? ", q" : " q") << qubits[i];
    if (op == Op::Measure)
        os << " -> c" << cbit;
    if (isConditional())
        os << " if c" << condBit << "==" << condValue;
    switch (tag) {
      case InstTag::DD:
        os << " [dd]";
        break;
      case InstTag::Twirl:
        os << " [twirl]";
        break;
      case InstTag::Compensation:
        os << " [comp]";
        break;
      case InstTag::None:
        break;
    }
    return os.str();
}

} // namespace casq
