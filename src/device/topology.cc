#include "device/topology.hh"

#include <algorithm>

#include "common/logging.hh"

namespace casq {

QubitPair::QubitPair(std::uint32_t x, std::uint32_t y)
    : a(std::min(x, y)), b(std::max(x, y))
{
    casq_assert(x != y, "QubitPair of identical qubits");
}

bool
QubitPair::operator<(const QubitPair &rhs) const
{
    return a != rhs.a ? a < rhs.a : b < rhs.b;
}

std::uint32_t
QubitPair::other(std::uint32_t q) const
{
    casq_assert(contains(q), "QubitPair::other on non-member");
    return q == a ? b : a;
}

CouplingMap::CouplingMap(std::size_t num_qubits)
    : _numQubits(num_qubits), _adjacency(num_qubits)
{
}

void
CouplingMap::addEdge(std::uint32_t a, std::uint32_t b)
{
    casq_assert(a < _numQubits && b < _numQubits,
                "edge endpoint out of range");
    if (hasEdge(a, b))
        return;
    _edges.emplace_back(a, b);
    _adjacency[a].push_back(b);
    _adjacency[b].push_back(a);
}

bool
CouplingMap::hasEdge(std::uint32_t a, std::uint32_t b) const
{
    const auto &adj = _adjacency[a];
    return std::find(adj.begin(), adj.end(), b) != adj.end();
}

std::size_t
CouplingMap::maxDegree() const
{
    std::size_t d = 0;
    for (const auto &adj : _adjacency)
        d = std::max(d, adj.size());
    return d;
}

bool
CouplingMap::atDistanceTwo(std::uint32_t a, std::uint32_t b) const
{
    if (a == b || hasEdge(a, b))
        return false;
    for (auto mid : _adjacency[a])
        if (hasEdge(mid, b))
            return true;
    return false;
}

CouplingMap
makeLinear(std::size_t n)
{
    CouplingMap map(n);
    for (std::uint32_t q = 0; q + 1 < n; ++q)
        map.addEdge(q, q + 1);
    return map;
}

CouplingMap
makeRing(std::size_t n)
{
    casq_assert(n >= 3, "ring needs at least 3 qubits");
    CouplingMap map(n);
    for (std::uint32_t q = 0; q < n; ++q)
        map.addEdge(q, std::uint32_t((q + 1) % n));
    return map;
}

CouplingMap
makeGrid(std::size_t rows, std::size_t cols)
{
    CouplingMap map(rows * cols);
    for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint32_t c = 0; c < cols; ++c) {
            const std::uint32_t q = r * cols + c;
            if (c + 1 < cols)
                map.addEdge(q, q + 1);
            if (r + 1 < rows)
                map.addEdge(q, q + std::uint32_t(cols));
        }
    }
    return map;
}

CouplingMap
makeHeavyHex127()
{
    // 7 rows; rows 0 and 6 have 14 qubits (row 0 covers columns
    // 0..13, row 6 covers columns 1..14), rows 1-5 have 15 qubits
    // (columns 0..14).  Between row r and r+1 there are 4 bridge
    // qubits at columns {0,4,8,12} for even r and {2,6,10,14} for
    // odd r.  Sequential index assignment reproduces IBM Eagle
    // numbering.
    CouplingMap map(127);

    struct RowInfo
    {
        std::uint32_t start;
        int col_lo;
        int col_hi;
    };
    std::vector<RowInfo> rows;
    std::vector<std::uint32_t> bridge_start(6);

    std::uint32_t next = 0;
    for (int r = 0; r < 7; ++r) {
        const int lo = (r == 6) ? 1 : 0;
        const int hi = (r == 0) ? 13 : 14;
        rows.push_back(RowInfo{next, lo, hi});
        next += std::uint32_t(hi - lo + 1);
        if (r < 6) {
            bridge_start[r] = next;
            next += 4;
        }
    }
    casq_assert(next == 127, "heavy-hex index construction error");

    auto row_qubit = [&](int r, int col) {
        const RowInfo &info = rows[r];
        casq_assert(col >= info.col_lo && col <= info.col_hi,
                    "row column out of range");
        return info.start + std::uint32_t(col - info.col_lo);
    };

    // Horizontal edges along each row.
    for (int r = 0; r < 7; ++r)
        for (int c = rows[r].col_lo; c < rows[r].col_hi; ++c)
            map.addEdge(row_qubit(r, c), row_qubit(r, c + 1));

    // Bridge qubits between rows.
    for (int r = 0; r < 6; ++r) {
        const int offset = (r % 2 == 0) ? 0 : 2;
        for (int k = 0; k < 4; ++k) {
            const int col = offset + 4 * k;
            const std::uint32_t bridge = bridge_start[r] +
                                         std::uint32_t(k);
            map.addEdge(bridge, row_qubit(r, col));
            map.addEdge(bridge, row_qubit(r + 1, col));
        }
    }
    return map;
}

} // namespace casq
