/**
 * @file
 * Qubit connectivity graphs.
 *
 * The heavy-hex generator reproduces the row/bridge indexing of IBM
 * Eagle 127-qubit processors (ibm_nazca and friends), so that the
 * qubit labels appearing in the paper's figures (e.g. the Fig. 8
 * layer on qubits 37-40 / 52 / 56-60) land on the same coordinates.
 */

#ifndef CASQ_DEVICE_TOPOLOGY_HH
#define CASQ_DEVICE_TOPOLOGY_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace casq {

/** Unordered pair of qubits; stored with first < second. */
struct QubitPair
{
    std::uint32_t a = 0;
    std::uint32_t b = 0;

    QubitPair() = default;
    QubitPair(std::uint32_t x, std::uint32_t y);

    bool operator==(const QubitPair &rhs) const = default;
    bool operator<(const QubitPair &rhs) const;

    bool contains(std::uint32_t q) const { return q == a || q == b; }

    /** The endpoint that is not q (q must be an endpoint). */
    std::uint32_t other(std::uint32_t q) const;
};

/** Undirected qubit coupling graph. */
class CouplingMap
{
  public:
    explicit CouplingMap(std::size_t num_qubits = 0);

    std::size_t numQubits() const { return _numQubits; }

    /** Add an undirected edge (idempotent). */
    void addEdge(std::uint32_t a, std::uint32_t b);

    bool hasEdge(std::uint32_t a, std::uint32_t b) const;

    const std::vector<QubitPair> &edges() const { return _edges; }

    const std::vector<std::uint32_t> &
    neighbors(std::uint32_t q) const
    {
        return _adjacency[q];
    }

    /** Maximum vertex degree. */
    std::size_t maxDegree() const;

    /** True if a and b are at graph distance exactly 2. */
    bool atDistanceTwo(std::uint32_t a, std::uint32_t b) const;

  private:
    std::size_t _numQubits;
    std::vector<QubitPair> _edges;
    std::vector<std::vector<std::uint32_t>> _adjacency;
};

/** Open chain of n qubits. */
CouplingMap makeLinear(std::size_t n);

/** Ring of n qubits. */
CouplingMap makeRing(std::size_t n);

/** rows x cols grid. */
CouplingMap makeGrid(std::size_t rows, std::size_t cols);

/**
 * IBM Eagle-style 127-qubit heavy-hex lattice: 7 rows of 14/15
 * qubits with bridge qubits every 4 columns alternating offsets,
 * matching the production indexing (e.g. bridge 52 connects 37 and
 * 56).
 */
CouplingMap makeHeavyHex127();

} // namespace casq

#endif // CASQ_DEVICE_TOPOLOGY_HH
