#include "device/backend.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace casq {

Backend::Backend(std::string name, CouplingMap coupling)
    : _name(std::move(name)),
      _coupling(std::move(coupling)),
      _qubits(_coupling.numQubits())
{
    for (const auto &edge : _coupling.edges())
        _pairs[edge] = PairProperties{};
    _physicalLabels.resize(numQubits());
    for (std::size_t q = 0; q < numQubits(); ++q)
        _physicalLabels[q] = std::uint32_t(q);
}

QubitProperties &
Backend::qubit(std::uint32_t q)
{
    casq_assert(q < numQubits(), "qubit out of range");
    return _qubits[q];
}

const QubitProperties &
Backend::qubit(std::uint32_t q) const
{
    casq_assert(q < numQubits(), "qubit out of range");
    return _qubits[q];
}

PairProperties &
Backend::pair(std::uint32_t a, std::uint32_t b)
{
    auto it = _pairs.find(QubitPair(a, b));
    casq_assert(it != _pairs.end(), "no pair (", a, ", ", b, ") on ",
                _name);
    return it->second;
}

const PairProperties &
Backend::pair(std::uint32_t a, std::uint32_t b) const
{
    auto it = _pairs.find(QubitPair(a, b));
    casq_assert(it != _pairs.end(), "no pair (", a, ", ", b, ") on ",
                _name);
    return it->second;
}

bool
Backend::hasPair(std::uint32_t a, std::uint32_t b) const
{
    return _pairs.count(QubitPair(a, b)) > 0;
}

void
Backend::addNnnPair(std::uint32_t a, std::uint32_t b,
                    double zz_rate_mhz)
{
    casq_assert(!_coupling.hasEdge(a, b),
                "NNN pair is directly coupled");
    PairProperties props;
    props.zzRateMHz = zz_rate_mhz;
    props.nextNearest = true;
    props.starkShiftMHz = 0.0;
    _pairs[QubitPair(a, b)] = props;
}

double
Backend::zzRate(std::uint32_t a, std::uint32_t b) const
{
    auto it = _pairs.find(QubitPair(a, b));
    return it == _pairs.end() ? 0.0 : it->second.zzRateMHz;
}

CrosstalkGraph
Backend::crosstalkGraph(double min_zz_mhz) const
{
    CrosstalkGraph graph(numQubits());
    for (const auto &[pair, props] : _pairs) {
        if (props.zzRateMHz >= min_zz_mhz) {
            graph.addEdge(CrosstalkEdge{pair, props.zzRateMHz,
                                        props.nextNearest});
        }
    }
    return graph;
}

Backend
Backend::subsystem(const std::vector<std::uint32_t> &qubits) const
{
    std::map<std::uint32_t, std::uint32_t> relabel;
    for (std::size_t i = 0; i < qubits.size(); ++i) {
        casq_assert(qubits[i] < numQubits(),
                    "subsystem qubit out of range");
        casq_assert(!relabel.count(qubits[i]),
                    "duplicate subsystem qubit");
        relabel[qubits[i]] = std::uint32_t(i);
    }

    CouplingMap coupling(qubits.size());
    for (const auto &edge : _coupling.edges()) {
        auto a = relabel.find(edge.a);
        auto b = relabel.find(edge.b);
        if (a != relabel.end() && b != relabel.end())
            coupling.addEdge(a->second, b->second);
    }

    Backend sub(_name + "-sub", std::move(coupling));
    sub._durations = _durations;
    // Per-pair gate durations are keyed by physical labels; remap
    // them onto the subsystem indices.
    sub._durations.twoQubitOverride.clear();
    for (const auto &edge : _coupling.edges()) {
        auto a = relabel.find(edge.a);
        auto b = relabel.find(edge.b);
        if (a == relabel.end() || b == relabel.end())
            continue;
        Instruction probe(Op::CX, {edge.a, edge.b});
        sub._durations.setPairDuration(a->second, b->second,
                                       _durations.of(probe));
    }
    for (std::size_t i = 0; i < qubits.size(); ++i)
        sub._qubits[i] = _qubits[qubits[i]];
    for (const auto &[pair, props] : _pairs) {
        auto a = relabel.find(pair.a);
        auto b = relabel.find(pair.b);
        if (a == relabel.end() || b == relabel.end())
            continue;
        sub._pairs[QubitPair(a->second, b->second)] = props;
    }
    sub._physicalLabels.assign(qubits.begin(), qubits.end());
    return sub;
}

namespace {

/**
 * Populate paper-typical calibration values with deterministic
 * per-element variation: ZZ rates of tens of kHz, ~20 kHz Stark
 * shifts on spectators, T1/T2 of a few hundred microseconds.
 */
void
populateTypicalNoise(Backend &backend, std::uint64_t seed)
{
    Rng rng(seed);
    for (std::uint32_t q = 0; q < backend.numQubits(); ++q) {
        QubitProperties &props = backend.qubit(q);
        props.t1Ns = rng.uniform(200e3, 350e3);
        props.t2Ns = rng.uniform(120e3, 220e3);
        props.readoutError = rng.uniform(0.008, 0.02);
        props.chargeParityMHz = 0.0;
        props.quasiStaticSigmaMHz = rng.uniform(0.004, 0.008);
        props.gateError1q = rng.uniform(1.5e-4, 3.5e-4);
    }
    for (const auto &edge : backend.coupling().edges()) {
        PairProperties &props = backend.pair(edge.a, edge.b);
        props.zzRateMHz = rng.uniform(0.035, 0.10);
        props.starkShiftMHz = rng.uniform(0.012, 0.028);
        props.measureStarkMHz = rng.uniform(0.04, 0.08);
        props.gateError2q = rng.uniform(5e-3, 9e-3);
        // Couplers calibrate to different gate lengths; parallel
        // gates therefore misalign their echoes, one of the key
        // contexts the compiler handles.
        backend.durations().setPairDuration(
            edge.a, edge.b, rng.uniform(420.0, 620.0));
    }
}

} // namespace

Backend
makeFakeNazca(std::uint64_t seed)
{
    Backend backend("fake_nazca", makeHeavyHex127());
    populateTypicalNoise(backend, seed);
    return backend;
}

Backend
makeFakeSherbrooke(std::uint64_t seed)
{
    Backend backend("fake_sherbrooke", makeHeavyHex127());
    populateTypicalNoise(backend, seed);
    // Type-VI frequency collision: enhanced next-nearest-neighbour
    // ZZ of order 10 kHz across the qubit triplet (0, 1, 2)
    // (paper Fig. 4c and Sec. III C).
    backend.addNnnPair(0, 2, 0.010);
    return backend;
}

Backend
makeFakeLinear(std::size_t n, std::uint64_t seed)
{
    Backend backend("fake_linear" + std::to_string(n),
                    makeLinear(n));
    populateTypicalNoise(backend, seed);
    return backend;
}

Backend
makeFakeRing(std::size_t n, std::uint64_t seed)
{
    Backend backend("fake_ring" + std::to_string(n), makeRing(n));
    populateTypicalNoise(backend, seed);
    return backend;
}

} // namespace casq
