/**
 * @file
 * The crosstalk graph consumed by Algorithm 1: coupling edges plus
 * any next-nearest-neighbour collision edges with a ZZ rate above
 * threshold (paper Sec. IV A: "often, this means having an edge
 * between neighboring qubits, but in collision conditions there may
 * be additional edges connecting next-nearest neighbors").
 */

#ifndef CASQ_DEVICE_CROSSTALK_HH
#define CASQ_DEVICE_CROSSTALK_HH

#include <vector>

#include "device/topology.hh"

namespace casq {

/** A crosstalk edge with its always-on ZZ rate. */
struct CrosstalkEdge
{
    QubitPair pair;
    double zzRateMHz = 0.0;
    bool nextNearest = false;
};

/** Adjacency structure over crosstalk edges. */
class CrosstalkGraph
{
  public:
    explicit CrosstalkGraph(std::size_t num_qubits = 0);

    std::size_t numQubits() const { return _numQubits; }

    void addEdge(const CrosstalkEdge &edge);

    const std::vector<CrosstalkEdge> &edges() const { return _edges; }

    /** Crosstalk neighbours of q (both NN and NNN). */
    const std::vector<std::uint32_t> &
    neighbors(std::uint32_t q) const
    {
        return _adjacency[q];
    }

    bool connected(std::uint32_t a, std::uint32_t b) const;

    /** ZZ rate of the (a, b) edge, or 0 when not connected. */
    double zzRate(std::uint32_t a, std::uint32_t b) const;

  private:
    std::size_t _numQubits;
    std::vector<CrosstalkEdge> _edges;
    std::vector<std::vector<std::uint32_t>> _adjacency;
};

} // namespace casq

#endif // CASQ_DEVICE_CROSSTALK_HH
