/**
 * @file
 * Synthetic device models ("fake backends").
 *
 * A Backend bundles the coupling map, per-qubit and per-pair
 * calibration data, and gate durations.  Both the compiler passes
 * and the noise model read from the same tables, mirroring the
 * paper's setup where compensation angles "can be inferred from the
 * reported backend information of IBM Quantum systems without the
 * need for additional calibration" (Sec. II D).
 */

#ifndef CASQ_DEVICE_BACKEND_HH
#define CASQ_DEVICE_BACKEND_HH

#include <map>
#include <string>
#include <vector>

#include "circuit/schedule.hh"
#include "device/crosstalk.hh"
#include "device/topology.hh"

namespace casq {

/** Per-qubit calibration data. */
struct QubitProperties
{
    double t1Ns = 250e3;             //!< relaxation time
    double t2Ns = 150e3;             //!< white-dephasing time
    double readoutError = 0.01;      //!< assignment error
    double chargeParityMHz = 0.0;    //!< +-delta from quasiparticles
    double quasiStaticSigmaMHz = 0.0; //!< slow (1/f-like) detuning
    double gateError1q = 2e-4;       //!< depolarizing per sx/x
};

/** Per-pair calibration data for coupled (or NNN-collided) pairs. */
struct PairProperties
{
    double zzRateMHz = 0.06;     //!< always-on ZZ coupling nu
    double starkShiftMHz = 0.0;  //!< spectator Z while pair-partner
                                 //!< is driven
    double measureStarkMHz = 0.0; //!< spectator Z while the pair
                                  //!< partner is being read out
    double gateError2q = 7e-3;   //!< depolarizing per 2q gate
    bool nextNearest = false;    //!< collision-induced NNN edge
};

/** A synthetic quantum device. */
class Backend
{
  public:
    Backend(std::string name, CouplingMap coupling);

    const std::string &name() const { return _name; }
    std::size_t numQubits() const { return _coupling.numQubits(); }

    const CouplingMap &coupling() const { return _coupling; }

    GateDurations &durations() { return _durations; }
    const GateDurations &durations() const { return _durations; }

    QubitProperties &qubit(std::uint32_t q);
    const QubitProperties &qubit(std::uint32_t q) const;

    /**
     * Properties of a coupled (or registered NNN) pair.  The
     * non-const overload requires the pair to exist.
     */
    PairProperties &pair(std::uint32_t a, std::uint32_t b);
    const PairProperties &pair(std::uint32_t a,
                               std::uint32_t b) const;

    bool hasPair(std::uint32_t a, std::uint32_t b) const;

    /** Register a next-nearest-neighbour collision edge. */
    void addNnnPair(std::uint32_t a, std::uint32_t b,
                    double zz_rate_mhz);

    const std::map<QubitPair, PairProperties> &pairs() const
    {
        return _pairs;
    }

    /** ZZ rate of a pair, or 0 when there is no crosstalk edge. */
    double zzRate(std::uint32_t a, std::uint32_t b) const;

    /**
     * Crosstalk graph of all pairs with ZZ rate >= min_zz_mhz,
     * including NNN collision edges (input of Algorithm 1).
     */
    CrosstalkGraph crosstalkGraph(double min_zz_mhz = 0.0) const;

    /**
     * Extract a sub-device on the given qubits, relabelled to
     * 0..k-1 in the given order; keeps couplings, pair data and
     * durations.  physicalLabels() maps back to this device.
     */
    Backend subsystem(const std::vector<std::uint32_t> &qubits) const;

    /** Original labels after subsystem(); identity otherwise. */
    const std::vector<std::uint32_t> &physicalLabels() const
    {
        return _physicalLabels;
    }

  private:
    std::string _name;
    CouplingMap _coupling;
    GateDurations _durations;
    std::vector<QubitProperties> _qubits;
    std::map<QubitPair, PairProperties> _pairs;
    std::vector<std::uint32_t> _physicalLabels;
};

/**
 * 127-qubit heavy-hex device with paper-typical noise magnitudes
 * (always-on ZZ of tens of kHz, ~20 kHz Stark shifts), deterministic
 * per-pair variation derived from the seed.
 */
Backend makeFakeNazca(std::uint64_t seed = 0xCA5);

/**
 * Heavy-hex device with a type-VI frequency-collision triplet
 * creating an enhanced NNN ZZ edge (paper Fig. 4c) among qubits
 * {0, 1, 2}.
 */
Backend makeFakeSherbrooke(std::uint64_t seed = 0x5AE);

/** Small open chain, used for Ramsey characterizations. */
Backend makeFakeLinear(std::size_t n, std::uint64_t seed = 0x11);

/** Ring device for the Heisenberg experiments (paper Fig. 7). */
Backend makeFakeRing(std::size_t n, std::uint64_t seed = 0x12);

} // namespace casq

#endif // CASQ_DEVICE_BACKEND_HH
