#include "device/crosstalk.hh"

#include <algorithm>

#include "common/logging.hh"

namespace casq {

CrosstalkGraph::CrosstalkGraph(std::size_t num_qubits)
    : _numQubits(num_qubits), _adjacency(num_qubits)
{
}

void
CrosstalkGraph::addEdge(const CrosstalkEdge &edge)
{
    casq_assert(edge.pair.a < _numQubits && edge.pair.b < _numQubits,
                "crosstalk edge endpoint out of range");
    if (connected(edge.pair.a, edge.pair.b))
        return;
    _edges.push_back(edge);
    _adjacency[edge.pair.a].push_back(edge.pair.b);
    _adjacency[edge.pair.b].push_back(edge.pair.a);
}

bool
CrosstalkGraph::connected(std::uint32_t a, std::uint32_t b) const
{
    const auto &adj = _adjacency[a];
    return std::find(adj.begin(), adj.end(), b) != adj.end();
}

double
CrosstalkGraph::zzRate(std::uint32_t a, std::uint32_t b) const
{
    for (const auto &edge : _edges)
        if (edge.pair.contains(a) && edge.pair.contains(b))
            return edge.zzRateMHz;
    return 0.0;
}

} // namespace casq
