#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace casq {

namespace {
// Atomic so worker threads (ensemble compilation) can read the
// level while the main thread flips it from a CLI flag.
std::atomic<LogLevel> global_level{LogLevel::Warn};
} // namespace

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
emit(const char *prefix, const std::string &msg)
{
    std::cerr << prefix << msg << std::endl;
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

} // namespace detail

} // namespace casq
