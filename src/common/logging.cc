#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

namespace casq {

namespace {
LogLevel global_level = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return global_level;
}

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

namespace detail {

void
emit(const char *prefix, const std::string &msg)
{
    std::cerr << prefix << msg << std::endl;
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

} // namespace detail

} // namespace casq
