/**
 * @file
 * Small dense complex matrices used for gate unitaries (2x2, 4x4 and
 * occasionally 8x8 in tests).  This is deliberately a minimal
 * value-semantics container: the statevector simulator has its own
 * specialized kernels and only consumes the raw elements.
 */

#ifndef CASQ_COMMON_MATRIX_HH
#define CASQ_COMMON_MATRIX_HH

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace casq {

using Complex = std::complex<double>;

/** Dense row-major complex matrix with value semantics. */
class CMat
{
  public:
    /** Construct an empty (0x0) matrix. */
    CMat() = default;

    /** Construct a zero-filled rows x cols matrix. */
    CMat(std::size_t rows, std::size_t cols);

    /**
     * Construct from a nested initializer list, e.g.
     * CMat{{1, 0}, {0, 1}}.
     */
    CMat(std::initializer_list<std::initializer_list<Complex>> rows);

    /** Identity matrix of dimension n. */
    static CMat identity(std::size_t n);

    /** Zero matrix of dimension rows x cols. */
    static CMat zero(std::size_t rows, std::size_t cols);

    /** Diagonal matrix from the given entries. */
    static CMat diagonal(const std::vector<Complex> &entries);

    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }

    Complex &operator()(std::size_t r, std::size_t c);
    const Complex &operator()(std::size_t r, std::size_t c) const;

    /** Raw row-major element access for simulator kernels. */
    const std::vector<Complex> &data() const { return _data; }

    CMat operator*(const CMat &rhs) const;
    CMat operator+(const CMat &rhs) const;
    CMat operator-(const CMat &rhs) const;
    CMat operator*(Complex scale) const;

    /** Conjugate transpose. */
    CMat dagger() const;

    /** Kronecker product; `this` acts on the more significant space. */
    CMat kron(const CMat &rhs) const;

    /** Sum of diagonal entries. */
    Complex trace() const;

    /** Largest elementwise |a - b|; matrices must be the same shape. */
    double maxAbsDiff(const CMat &rhs) const;

    /** True if max elementwise difference is below tol. */
    bool approxEqual(const CMat &rhs, double tol = 1e-9) const;

    /**
     * True if the two matrices differ only by a global phase, i.e.
     * a = e^{i phi} b for some real phi.
     */
    bool equalUpToGlobalPhase(const CMat &rhs, double tol = 1e-9) const;

    /** True if U * U^dagger is the identity to within tol. */
    bool isUnitary(double tol = 1e-9) const;

    /** Human-readable dump, mainly for test failure messages. */
    std::string toString(int precision = 3) const;

  private:
    std::size_t _rows = 0;
    std::size_t _cols = 0;
    std::vector<Complex> _data;
};

/** Convenience free-function Kronecker product. */
CMat kron(const CMat &a, const CMat &b);

} // namespace casq

#endif // CASQ_COMMON_MATRIX_HH
