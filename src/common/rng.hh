/**
 * @file
 * Deterministic random number generation for trajectory simulation.
 *
 * Every trajectory derives its own Rng from (master seed, trajectory
 * index) so results are reproducible independent of thread scheduling.
 * The generator is xoshiro256++ seeded via splitmix64.
 *
 * Thread-safety model: an Rng instance is mutable state and must be
 * confined to one thread; there is no internal locking.  Parallel
 * work (trajectory sweeps, ensemble compilation) takes a const
 * master Rng and gives each unit of work its own counter-derived
 * stream via derive(), which is const and safe to call from any
 * number of threads concurrently.  This is what makes parallel
 * results bit-identical to serial ones: stream identity depends
 * only on (seed, index), never on scheduling order.
 */

#ifndef CASQ_COMMON_RNG_HH
#define CASQ_COMMON_RNG_HH

#include <cstdint>

namespace casq {

/** Fast, reproducible PRNG (xoshiro256++). */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds decorrelate. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Derive an independent stream, e.g. per trajectory. */
    Rng derive(std::uint64_t stream) const;

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal via Box-Muller (cached spare value). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Fair coin flip mapped to {+1, -1}. */
    int randomSign();

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

  private:
    std::uint64_t _state[4];
    double _spare = 0.0;
    bool _hasSpare = false;
    std::uint64_t _seed;
};

} // namespace casq

#endif // CASQ_COMMON_RNG_HH
