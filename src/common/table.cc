#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace casq {

Table::Table(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    casq_assert(cells.size() == _headers.size(),
                "table row width mismatch");
    _rows.push_back(std::move(cells));
}

std::string
Table::fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(int(widths[c] + 2))
               << cells[c];
        }
        os << "\n";
    };

    print_row(_headers);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : _rows)
        print_row(row);
}

void
printFigure(std::ostream &os, const std::string &title,
            const std::string &x_label, const std::vector<double> &xs,
            const std::vector<Series> &series, int precision)
{
    printBanner(os, title);
    std::vector<std::string> headers{x_label};
    for (const auto &s : series) {
        casq_assert(s.values.size() == xs.size(),
                    "series '", s.name, "' length mismatch");
        headers.push_back(s.name);
    }
    Table table(std::move(headers));
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::vector<std::string> row;
        row.push_back(Table::fmt(xs[i], xs[i] == int(xs[i]) ? 0 : 3));
        for (const auto &s : series)
            row.push_back(Table::fmt(s.values[i], precision));
        table.addRow(std::move(row));
    }
    table.print(os);
    os << "\n";
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "== " << title << " ==\n";
}

} // namespace casq
