/**
 * @file
 * Versioned, endian-stable binary serialization primitives.
 *
 * Sharded ensemble execution (sim/shard.hh) moves shard specs and
 * shard results between processes and hosts as flat byte payloads.
 * The encoding rules here make those payloads portable and
 * reproducible:
 *
 *  - every integer is written little-endian byte by byte, so the
 *    bytes are identical on any host regardless of its native
 *    endianness or struct layout;
 *  - doubles are written as the little-endian bytes of their IEEE-754
 *    bit pattern, so values (including NaNs) round-trip bit-exactly;
 *  - containers are length-prefixed, and readers bounds-check every
 *    access: a truncated or corrupted payload raises SerializeError
 *    with the offending offset instead of crashing.
 *
 * Encoding is canonical: encode(decode(encode(x))) == encode(x)
 * byte for byte, which lets consumers fingerprint payloads to detect
 * spec mismatches across shards.
 */

#ifndef CASQ_COMMON_SERIALIZE_HH
#define CASQ_COMMON_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace casq {

/**
 * Malformed payload (truncation, corruption, version skew).
 *
 * Besides the human-readable message, the error records the byte
 * offset the decoder had reached when it rejected the payload
 * (kNoOffset for failures with no position, e.g. file I/O).  The
 * tools render both through describePayloadError() so every corrupt
 * payload is reported as "file: byte N: what" instead of an ad-hoc
 * message.
 */
class SerializeError : public std::runtime_error
{
  public:
    /** Sentinel for "no byte position recorded". */
    static constexpr std::size_t kNoOffset = ~std::size_t(0);

    explicit SerializeError(const std::string &what)
        : std::runtime_error(what)
    {
    }

    SerializeError(const std::string &what, std::size_t offset)
        : std::runtime_error(what), _offset(offset)
    {
    }

    bool hasOffset() const { return _offset != kNoOffset; }
    std::size_t offset() const { return _offset; }

    /**
     * Record `offset` unless a more precise position is already
     * attached; decoders call this so semantic validation errors
     * (raised after the reads succeeded) still carry the position
     * of the offending field.
     */
    void
    attachOffset(std::size_t offset)
    {
        if (!hasOffset())
            _offset = offset;
    }

  private:
    std::size_t _offset = kNoOffset;
};

/**
 * Render a SerializeError raised while decoding `path` as the one
 * canonical diagnostic line every tool prints:
 * "path: byte N: message" (or without the byte clause when the
 * error carries no position).  Pass an empty path for in-memory
 * payloads.
 */
std::string describePayloadError(const std::string &path,
                                 const SerializeError &err);

/** Append-only little-endian byte sink. */
class ByteWriter
{
  public:
    const std::vector<std::uint8_t> &bytes() const { return _bytes; }
    std::vector<std::uint8_t> take() { return std::move(_bytes); }
    std::size_t size() const { return _bytes.size(); }

    void u8(std::uint8_t v) { _bytes.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v) { u32(std::uint32_t(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    /** IEEE-754 bit pattern, little-endian (NaNs round-trip). */
    void f64(double v);

    /** u32 length prefix followed by the raw bytes. */
    void str(const std::string &v);

  private:
    std::vector<std::uint8_t> _bytes;
};

/**
 * Bounds-checked little-endian byte source.  Every accessor throws
 * SerializeError naming the payload offset when the remaining bytes
 * cannot satisfy the read; a reader never walks off the buffer.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : _data(data), _size(size)
    {
    }

    explicit ByteReader(const std::vector<std::uint8_t> &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {
    }

    std::size_t offset() const { return _offset; }
    std::size_t remaining() const { return _size - _offset; }
    bool atEnd() const { return _offset == _size; }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32() { return std::int32_t(u32()); }
    bool boolean();
    double f64();
    std::string str();

    /**
     * Read a u32 element count for elements of at least
     * min_element_bytes each, rejecting counts the remaining bytes
     * cannot possibly hold (so a corrupted length cannot trigger a
     * huge allocation).
     */
    std::size_t count(std::size_t min_element_bytes);

    /** Fail unless the whole payload has been consumed. */
    void requireEnd() const;

  private:
    const std::uint8_t *_data;
    std::size_t _size;
    std::size_t _offset = 0;

    void need(std::size_t bytes) const;
};

/**
 * 64-bit FNV-1a fingerprint of a byte payload.  Used to tie shard
 * results back to the exact spec bytes they were produced from.
 */
std::uint64_t fingerprintBytes(const std::uint8_t *data,
                               std::size_t size);
std::uint64_t fingerprintBytes(const std::vector<std::uint8_t> &bytes);

/** Read a whole binary file; throws SerializeError on I/O failure. */
std::vector<std::uint8_t> readBinaryFile(const std::string &path);

/** Write a binary file; throws SerializeError on I/O failure. */
void writeBinaryFile(const std::string &path,
                     const std::vector<std::uint8_t> &bytes);

} // namespace casq

#endif // CASQ_COMMON_SERIALIZE_HH
