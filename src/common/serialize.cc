#include "common/serialize.hh"

#include <cstring>
#include <fstream>

namespace casq {

namespace {

[[noreturn]] void
outOfBounds(std::size_t offset, std::size_t size,
            std::size_t wanted)
{
    throw SerializeError(
        "truncated payload: need " + std::to_string(wanted) +
        " byte(s) at offset " + std::to_string(offset) +
        " but only " + std::to_string(size - offset) + " remain",
        offset);
}

} // namespace

std::string
describePayloadError(const std::string &path,
                     const SerializeError &err)
{
    std::string text;
    if (!path.empty())
        text += path + ": ";
    if (err.hasOffset())
        text += "byte " + std::to_string(err.offset()) + ": ";
    text += err.what();
    return text;
}

// ------------------------------------------------------ ByteWriter

void
ByteWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        _bytes.push_back(std::uint8_t(v >> (8 * i)));
}

void
ByteWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        _bytes.push_back(std::uint8_t(v >> (8 * i)));
}

void
ByteWriter::f64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::str(const std::string &v)
{
    u32(std::uint32_t(v.size()));
    _bytes.insert(_bytes.end(), v.begin(), v.end());
}

// ------------------------------------------------------ ByteReader

void
ByteReader::need(std::size_t bytes) const
{
    if (_size - _offset < bytes)
        outOfBounds(_offset, _size, bytes);
}

std::uint8_t
ByteReader::u8()
{
    need(1);
    return _data[_offset++];
}

std::uint32_t
ByteReader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(_data[_offset + i]) << (8 * i);
    _offset += 4;
    return v;
}

std::uint64_t
ByteReader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(_data[_offset + i]) << (8 * i);
    _offset += 8;
    return v;
}

bool
ByteReader::boolean()
{
    const std::uint8_t v = u8();
    if (v > 1) {
        throw SerializeError(
            "corrupt boolean value " + std::to_string(int(v)) +
            " at offset " + std::to_string(_offset - 1),
            _offset - 1);
    }
    return v == 1;
}

double
ByteReader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteReader::str()
{
    const std::size_t n = count(1);
    std::string v(reinterpret_cast<const char *>(_data + _offset),
                  n);
    _offset += n;
    return v;
}

std::size_t
ByteReader::count(std::size_t min_element_bytes)
{
    const std::size_t at = _offset;
    const std::uint32_t n = u32();
    if (min_element_bytes > 0 &&
        std::size_t(n) > remaining() / min_element_bytes) {
        throw SerializeError(
            "corrupt element count " + std::to_string(n) +
            " at offset " + std::to_string(at) + ": only " +
            std::to_string(remaining()) + " byte(s) remain",
            at);
    }
    return n;
}

void
ByteReader::requireEnd() const
{
    if (!atEnd()) {
        throw SerializeError(
            "trailing garbage: " + std::to_string(remaining()) +
            " unconsumed byte(s) at offset " +
            std::to_string(_offset),
            _offset);
    }
}

// ----------------------------------------------------- fingerprint

std::uint64_t
fingerprintBytes(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

std::uint64_t
fingerprintBytes(const std::vector<std::uint8_t> &bytes)
{
    return fingerprintBytes(bytes.data(), bytes.size());
}

// ------------------------------------------------------- file I/O

std::vector<std::uint8_t>
readBinaryFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SerializeError("cannot open '" + path +
                             "' for reading");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        throw SerializeError("I/O error while reading '" + path +
                             "'");
    return bytes;
}

void
writeBinaryFile(const std::string &path,
                const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw SerializeError("cannot open '" + path +
                             "' for writing");
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
    if (!out)
        throw SerializeError("I/O error while writing '" + path +
                             "'");
}

} // namespace casq
