#include "common/rng.hh"

#include <cmath>

namespace casq {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : _seed(seed)
{
    std::uint64_t s = seed;
    for (auto &w : _state)
        w = splitmix64(s);
}

Rng
Rng::derive(std::uint64_t stream) const
{
    // Mix the stream index through splitmix so that derived streams
    // with consecutive indices are decorrelated.
    std::uint64_t s = _seed ^ (0xD1B54A32D192ED03ull * (stream + 1));
    return Rng(splitmix64(s));
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_state[0] + _state[3], 23) +
                                 _state[0];
    const std::uint64_t t = _state[1] << 17;
    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53-bit mantissa for a uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    // Debiased modulo; n is small in all our uses.
    const std::uint64_t threshold = (-n) % n;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (_hasSpare) {
        _hasSpare = false;
        return _spare;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    _spare = v * factor;
    _hasSpare = true;
    return u * factor;
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

int
Rng::randomSign()
{
    return (next() & 1) ? 1 : -1;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

} // namespace casq
