/**
 * @file
 * Statistics helpers shared by the experiment protocols: summary
 * statistics, least-squares line fits, and the exponential-decay fits
 * used for layer-fidelity estimation and mitigation-overhead
 * estimation (paper Secs. V C-V D).
 */

#ifndef CASQ_COMMON_STATISTICS_HH
#define CASQ_COMMON_STATISTICS_HH

#include <cstddef>
#include <vector>

namespace casq {

/** Summary of a sample: mean, stddev and standard error. */
struct SummaryStat
{
    double mean = 0.0;
    double stddev = 0.0;
    double stderror = 0.0;
    std::size_t count = 0;
};

/** Compute mean / stddev / standard error of the samples. */
SummaryStat summarize(const std::vector<double> &samples);

/** Result of a straight-line least-squares fit y = slope*x + icept. */
struct LineFit
{
    double slope = 0.0;
    double intercept = 0.0;
};

/** Ordinary least squares on (xs, ys); sizes must match and be >= 2. */
LineFit linearFit(const std::vector<double> &xs,
                  const std::vector<double> &ys);

/** Result of an exponential-decay fit y = amplitude * lambda^x. */
struct DecayFit
{
    double amplitude = 1.0;
    double lambda = 1.0;
};

/**
 * Fit y = A * lambda^x by log-linear least squares.  Non-positive y
 * samples are clipped to `floor` before taking logs; this matches the
 * standard randomized-benchmarking style decay fit.
 */
DecayFit fitExpDecay(const std::vector<double> &xs,
                     const std::vector<double> &ys,
                     double floor = 1e-4);

/**
 * Fit noisy_d ~= A * lambda^d * ideal_d, the global-depolarizing
 * rescaling model the paper uses to estimate mitigation overhead
 * (Sec. V B).  Minimizes the summed squared residual over A and
 * lambda via golden-section search on lambda in (lo, hi).
 */
DecayFit fitScaledDecay(const std::vector<double> &depths,
                        const std::vector<double> &noisy,
                        const std::vector<double> &ideal,
                        double lo = 0.05, double hi = 1.5);

/**
 * Sampling-overhead proxy for an error-mitigated estimator whose raw
 * signal was rescaled by 1 / (A * lambda^d): the variance grows by
 * the square of the rescaling factor.
 */
double samplingOverhead(const DecayFit &fit, double depth);

} // namespace casq

#endif // CASQ_COMMON_STATISTICS_HH
