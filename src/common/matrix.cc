#include "common/matrix.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace casq {

CMat::CMat(std::size_t rows, std::size_t cols)
    : _rows(rows), _cols(cols), _data(rows * cols)
{
}

CMat::CMat(std::initializer_list<std::initializer_list<Complex>> rows)
{
    _rows = rows.size();
    _cols = _rows ? rows.begin()->size() : 0;
    _data.reserve(_rows * _cols);
    for (const auto &row : rows) {
        casq_assert(row.size() == _cols,
                    "ragged initializer list for CMat");
        for (const auto &v : row)
            _data.push_back(v);
    }
}

CMat
CMat::identity(std::size_t n)
{
    CMat m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

CMat
CMat::zero(std::size_t rows, std::size_t cols)
{
    return CMat(rows, cols);
}

CMat
CMat::diagonal(const std::vector<Complex> &entries)
{
    CMat m(entries.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
        m(i, i) = entries[i];
    return m;
}

Complex &
CMat::operator()(std::size_t r, std::size_t c)
{
    return _data[r * _cols + c];
}

const Complex &
CMat::operator()(std::size_t r, std::size_t c) const
{
    return _data[r * _cols + c];
}

CMat
CMat::operator*(const CMat &rhs) const
{
    casq_assert(_cols == rhs._rows, "matrix dimension mismatch in mul: ",
                _rows, "x", _cols, " * ", rhs._rows, "x", rhs._cols);
    CMat out(_rows, rhs._cols);
    for (std::size_t i = 0; i < _rows; ++i) {
        for (std::size_t k = 0; k < _cols; ++k) {
            const Complex a = (*this)(i, k);
            if (a == Complex{})
                continue;
            for (std::size_t j = 0; j < rhs._cols; ++j)
                out(i, j) += a * rhs(k, j);
        }
    }
    return out;
}

CMat
CMat::operator+(const CMat &rhs) const
{
    casq_assert(_rows == rhs._rows && _cols == rhs._cols,
                "matrix shape mismatch in add");
    CMat out(_rows, _cols);
    for (std::size_t i = 0; i < _data.size(); ++i)
        out._data[i] = _data[i] + rhs._data[i];
    return out;
}

CMat
CMat::operator-(const CMat &rhs) const
{
    casq_assert(_rows == rhs._rows && _cols == rhs._cols,
                "matrix shape mismatch in sub");
    CMat out(_rows, _cols);
    for (std::size_t i = 0; i < _data.size(); ++i)
        out._data[i] = _data[i] - rhs._data[i];
    return out;
}

CMat
CMat::operator*(Complex scale) const
{
    CMat out(_rows, _cols);
    for (std::size_t i = 0; i < _data.size(); ++i)
        out._data[i] = _data[i] * scale;
    return out;
}

CMat
CMat::dagger() const
{
    CMat out(_cols, _rows);
    for (std::size_t i = 0; i < _rows; ++i)
        for (std::size_t j = 0; j < _cols; ++j)
            out(j, i) = std::conj((*this)(i, j));
    return out;
}

CMat
CMat::kron(const CMat &rhs) const
{
    CMat out(_rows * rhs._rows, _cols * rhs._cols);
    for (std::size_t i = 0; i < _rows; ++i) {
        for (std::size_t j = 0; j < _cols; ++j) {
            const Complex a = (*this)(i, j);
            if (a == Complex{})
                continue;
            for (std::size_t k = 0; k < rhs._rows; ++k)
                for (std::size_t l = 0; l < rhs._cols; ++l)
                    out(i * rhs._rows + k, j * rhs._cols + l) =
                        a * rhs(k, l);
        }
    }
    return out;
}

Complex
CMat::trace() const
{
    casq_assert(_rows == _cols, "trace of non-square matrix");
    Complex t{};
    for (std::size_t i = 0; i < _rows; ++i)
        t += (*this)(i, i);
    return t;
}

double
CMat::maxAbsDiff(const CMat &rhs) const
{
    casq_assert(_rows == rhs._rows && _cols == rhs._cols,
                "matrix shape mismatch in maxAbsDiff");
    double m = 0.0;
    for (std::size_t i = 0; i < _data.size(); ++i)
        m = std::max(m, std::abs(_data[i] - rhs._data[i]));
    return m;
}

bool
CMat::approxEqual(const CMat &rhs, double tol) const
{
    if (_rows != rhs._rows || _cols != rhs._cols)
        return false;
    return maxAbsDiff(rhs) <= tol;
}

bool
CMat::equalUpToGlobalPhase(const CMat &rhs, double tol) const
{
    if (_rows != rhs._rows || _cols != rhs._cols)
        return false;
    // Find the largest-magnitude entry of rhs to extract the phase.
    std::size_t best = 0;
    double best_mag = 0.0;
    for (std::size_t i = 0; i < rhs._data.size(); ++i) {
        const double mag = std::abs(rhs._data[i]);
        if (mag > best_mag) {
            best_mag = mag;
            best = i;
        }
    }
    if (best_mag < tol)
        return maxAbsDiff(rhs) <= tol;
    if (std::abs(_data[best]) < tol)
        return false;
    const Complex phase = _data[best] / rhs._data[best];
    if (std::abs(std::abs(phase) - 1.0) > tol)
        return false;
    return approxEqual(rhs * phase, tol);
}

bool
CMat::isUnitary(double tol) const
{
    if (_rows != _cols)
        return false;
    return ((*this) * dagger()).approxEqual(identity(_rows), tol);
}

std::string
CMat::toString(int precision) const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision);
    for (std::size_t i = 0; i < _rows; ++i) {
        os << "[ ";
        for (std::size_t j = 0; j < _cols; ++j) {
            const Complex v = (*this)(i, j);
            os << std::setw(7) << v.real() << (v.imag() < 0 ? "-" : "+")
               << std::setw(6) << std::abs(v.imag()) << "i ";
        }
        os << "]\n";
    }
    return os.str();
}

CMat
kron(const CMat &a, const CMat &b)
{
    return a.kron(b);
}

} // namespace casq
