#include "common/thread_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace casq {

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned count =
        threads == 0 ? hardwareThreads() : threads;
    _workers.resize(count);
    _threads.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
    }
    _wake.notify_all();
    for (std::thread &thread : _threads)
        thread.join();
}

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::submit(std::function<void()> task)
{
    casq_assert(task != nullptr, "cannot submit a null task");
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _workers[_nextQueue].queue.push_back(std::move(task));
        _nextQueue = (_nextQueue + 1) % _workers.size();
        ++_pending;
    }
    _wake.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _idle.wait(lock, [this] { return _pending == 0; });
}

std::function<void()>
ThreadPool::takeTask(std::size_t self)
{
    Worker &own = _workers[self];
    if (!own.queue.empty()) {
        std::function<void()> task = std::move(own.queue.front());
        own.queue.pop_front();
        return task;
    }
    // Steal from the back of the first non-empty sibling, scanning
    // from the next worker over so victims rotate.
    for (std::size_t k = 1; k < _workers.size(); ++k) {
        Worker &victim = _workers[(self + k) % _workers.size()];
        if (victim.queue.empty())
            continue;
        std::function<void()> task = std::move(victim.queue.back());
        victim.queue.pop_back();
        return task;
    }
    return nullptr;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        if (std::function<void()> task = takeTask(self)) {
            lock.unlock();
            task();
            lock.lock();
            if (--_pending == 0)
                _idle.notify_all();
            continue;
        }
        if (_shutdown)
            return;
        _wake.wait(lock);
    }
}

void
parallelFor(std::size_t count, unsigned threads,
            const std::function<void(std::size_t)> &body)
{
    threads = ThreadPool::resolveThreads(threads);
    if (threads <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    ThreadPool pool(std::min<std::size_t>(threads, count));
    for (std::size_t i = 0; i < count; ++i)
        pool.submit([&body, i] { body(i); });
    pool.wait();
}

} // namespace casq
