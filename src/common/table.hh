/**
 * @file
 * ASCII table and data-series printers used by the benchmark
 * harnesses to emit the rows/series corresponding to each paper
 * figure and table.
 */

#ifndef CASQ_COMMON_TABLE_HH
#define CASQ_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace casq {

/** Simple column-aligned ASCII table. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row of preformatted cells. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string fmt(double value, int precision = 4);

    /** Render with aligned columns to the stream. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/**
 * A named y-series over a shared x-axis, used to print
 * "figure-shaped" output (one column per curve).
 */
struct Series
{
    std::string name;
    std::vector<double> values;
};

/**
 * Print a figure as an aligned table: one row per x value, one column
 * per series.  Used by every fig*_ bench binary.
 */
void printFigure(std::ostream &os, const std::string &title,
                 const std::string &x_label,
                 const std::vector<double> &xs,
                 const std::vector<Series> &series, int precision = 4);

/** Print a `== title ==` banner. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace casq

#endif // CASQ_COMMON_TABLE_HH
