/**
 * @file
 * A small work-stealing thread pool for CPU-bound fan-out, built for
 * ensemble compilation (PassManager::runEnsemble) and other
 * embarrassingly parallel sweeps.
 *
 * Each worker owns a deque of tasks: it pops work from the front of
 * its own queue and, when that runs dry, steals from the back of a
 * sibling's queue.  Tasks submitted from outside the pool are
 * distributed round-robin so a burst of uniform tasks starts out
 * balanced and stealing only has to fix stragglers.
 *
 * The pool makes no ordering or placement guarantees, so work
 * executed on it must be deterministic by construction: every task
 * derives its own inputs (e.g. a counter-based Rng stream, see
 * rng.hh) and writes to its own output slot.  parallelFor() below
 * packages exactly that pattern.
 */

#ifndef CASQ_COMMON_THREAD_POOL_HH
#define CASQ_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace casq {

/** Work-stealing pool of a fixed number of worker threads. */
class ThreadPool
{
  public:
    /**
     * Spawn `threads` workers; 0 means one per hardware thread.
     * The pool is ready to accept work immediately.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins the workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(_workers.size());
    }

    /** Hardware concurrency with a floor of one. */
    static unsigned hardwareThreads();

    /**
     * Shared thread-count convention of every options struct
     * (ExecutionOptions.threads, EnsembleOptions.threads, ...):
     * 0 means one worker per hardware thread, any other value is
     * taken literally (oversubscription is allowed -- results never
     * depend on the count, only throughput does).
     */
    static unsigned resolveThreads(unsigned requested)
    {
        return requested == 0 ? hardwareThreads() : requested;
    }

    /**
     * Resolve the two knobs that can drive one fused pool (a
     * compile-era thread argument plus ExecutionOptions.threads):
     * whichever asks for more workers wins.  Negative exec values
     * are treated as 0.
     */
    static unsigned
    resolveThreads(unsigned compile_requested, int exec_requested)
    {
        const unsigned a = resolveThreads(compile_requested);
        const unsigned b = resolveThreads(
            exec_requested < 0 ? 0u : unsigned(exec_requested));
        return a > b ? a : b;
    }

    /**
     * Enqueue a task.  Tasks must not throw (casq reports internal
     * errors via casq_panic, which aborts); an escaping exception
     * terminates the process.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished running. */
    void wait();

  private:
    struct Worker
    {
        std::deque<std::function<void()>> queue;
    };

    std::vector<Worker> _workers;
    std::vector<std::thread> _threads;

    /** One lock for all queues; tasks are coarse (whole compiles). */
    std::mutex _mutex;
    std::condition_variable _wake; //!< workers: work or shutdown
    std::condition_variable _idle; //!< waiters: pending hit zero
    std::size_t _pending = 0;      //!< submitted but not finished
    std::size_t _nextQueue = 0;    //!< round-robin submission cursor
    bool _shutdown = false;

    void workerLoop(std::size_t self);

    /**
     * Pop a task, preferring worker `self`'s own queue front and
     * falling back to stealing from the back of the first non-empty
     * sibling queue.  Returns an empty function when all queues are
     * empty.  Caller must hold _mutex.
     */
    std::function<void()> takeTask(std::size_t self);
};

/**
 * Run body(0) .. body(count - 1), spreading the calls over
 * `threads` workers (0 means one per hardware thread).  Each index
 * is invoked exactly once; with threads <= 1 (or count <= 1) the
 * calls happen inline on the calling thread, in index order, with
 * no pool spun up.  Returns when every call has finished.
 *
 * body must be safe to invoke concurrently for distinct indices.
 */
void parallelFor(std::size_t count, unsigned threads,
                 const std::function<void(std::size_t)> &body);

} // namespace casq

#endif // CASQ_COMMON_THREAD_POOL_HH
