/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's
 * logging.hh: fatal() for user errors, panic() for internal bugs,
 * warn()/inform() for status messages.
 */

#ifndef CASQ_COMMON_LOGGING_HH
#define CASQ_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace casq {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Global verbosity; messages above this level are dropped. */
LogLevel logLevel();

/** Set the global verbosity (e.g. from a CLI flag). */
void setLogLevel(LogLevel level);

namespace detail {

/** Emit a message to stderr with a severity prefix. */
void emit(const char *prefix, const std::string &msg);

/**
 * Terminate with exit(1).  Used for conditions that are the user's
 * fault (bad configuration, invalid arguments).
 */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/**
 * Terminate with abort().  Used for conditions that indicate a bug in
 * casq itself, never the user's fault.
 */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Build a message from stream-able parts. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Informative message for the user; printed at Info verbosity. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Info)
        detail::emit("info: ", detail::format(args...));
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn: ", detail::format(args...));
}

/** Developer-level tracing; printed at Debug verbosity. */
template <typename... Args>
void
debug(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::emit("debug: ", detail::format(args...));
}

} // namespace casq

/** Abort the program because of a user-level error. */
#define casq_fatal(...)                                                     \
    ::casq::detail::fatalImpl(__FILE__, __LINE__,                           \
                              ::casq::detail::format(__VA_ARGS__))

/** Abort the program because of an internal casq bug. */
#define casq_panic(...)                                                     \
    ::casq::detail::panicImpl(__FILE__, __LINE__,                           \
                              ::casq::detail::format(__VA_ARGS__))

/** Panic unless an internal invariant holds. */
#define casq_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            casq_panic("assertion '", #cond, "' failed. ",                  \
                       ::casq::detail::format(__VA_ARGS__));                \
    } while (0)

#endif // CASQ_COMMON_LOGGING_HH
