#include "common/statistics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace casq {

SummaryStat
summarize(const std::vector<double> &samples)
{
    SummaryStat s;
    s.count = samples.size();
    if (s.count == 0)
        return s;
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    s.mean = sum / s.count;
    if (s.count < 2)
        return s;
    double ss = 0.0;
    for (double v : samples)
        ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / (s.count - 1));
    s.stderror = s.stddev / std::sqrt(double(s.count));
    return s;
}

LineFit
linearFit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    casq_assert(xs.size() == ys.size() && xs.size() >= 2,
                "linearFit needs >= 2 matching samples");
    const double n = double(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    LineFit fit;
    if (std::abs(denom) < 1e-30) {
        fit.slope = 0.0;
        fit.intercept = sy / n;
        return fit;
    }
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    return fit;
}

DecayFit
fitExpDecay(const std::vector<double> &xs, const std::vector<double> &ys,
            double floor)
{
    std::vector<double> logy;
    logy.reserve(ys.size());
    for (double y : ys)
        logy.push_back(std::log(std::max(y, floor)));
    const LineFit line = linearFit(xs, logy);
    DecayFit fit;
    fit.amplitude = std::exp(line.intercept);
    fit.lambda = std::exp(line.slope);
    return fit;
}

namespace {

/**
 * For a fixed lambda, the optimal amplitude of
 * sum_d (noisy_d - A * lambda^d * ideal_d)^2 has the closed form
 * A = sum(noisy*ideal*l^d) / sum((ideal*l^d)^2).  Returns the
 * residual at that optimum (and the amplitude through the out param).
 */
double
residualAtLambda(double lambda, const std::vector<double> &depths,
                 const std::vector<double> &noisy,
                 const std::vector<double> &ideal, double &amplitude)
{
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < depths.size(); ++i) {
        const double m = std::pow(lambda, depths[i]) * ideal[i];
        num += noisy[i] * m;
        den += m * m;
    }
    amplitude = den > 1e-30 ? num / den : 1.0;
    double res = 0.0;
    for (std::size_t i = 0; i < depths.size(); ++i) {
        const double m = amplitude * std::pow(lambda, depths[i]) *
                         ideal[i];
        res += (noisy[i] - m) * (noisy[i] - m);
    }
    return res;
}

} // namespace

DecayFit
fitScaledDecay(const std::vector<double> &depths,
               const std::vector<double> &noisy,
               const std::vector<double> &ideal, double lo, double hi)
{
    casq_assert(depths.size() == noisy.size() &&
                depths.size() == ideal.size() && !depths.empty(),
                "fitScaledDecay needs matching non-empty samples");
    // Golden-section search for the lambda minimizing the residual.
    const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
    double a = lo, b = hi;
    double amp = 1.0;
    for (int iter = 0; iter < 80; ++iter) {
        const double c = b - phi * (b - a);
        const double d = a + phi * (b - a);
        double amp_c, amp_d;
        const double fc = residualAtLambda(c, depths, noisy, ideal,
                                           amp_c);
        const double fd = residualAtLambda(d, depths, noisy, ideal,
                                           amp_d);
        if (fc < fd)
            b = d;
        else
            a = c;
    }
    DecayFit fit;
    fit.lambda = (a + b) / 2.0;
    residualAtLambda(fit.lambda, depths, noisy, ideal, amp);
    fit.amplitude = amp;
    return fit;
}

double
samplingOverhead(const DecayFit &fit, double depth)
{
    const double scale = fit.amplitude * std::pow(fit.lambda, depth);
    if (scale <= 1e-12)
        return 1e24;
    const double factor = 1.0 / scale;
    return factor * factor;
}

} // namespace casq
