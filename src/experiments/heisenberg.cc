#include "experiments/heisenberg.hh"

#include "circuit/unitary.hh"
#include "common/logging.hh"

namespace casq {

LayeredCircuit
buildHeisenbergRing(std::size_t num_qubits, int steps,
                    const HeisenbergParams &params)
{
    casq_assert(num_qubits >= 6 && num_qubits % 3 == 0,
                "ring size must be a positive multiple of 3 for the "
                "three-layer edge partition");
    LayeredCircuit circuit(num_qubits, 0);

    // Neel-type initial state: |0101...> evolves non-trivially.
    Layer prep{LayerKind::OneQubit, {}};
    for (std::uint32_t q = 1; q < num_qubits; q += 2)
        prep.insts.emplace_back(Op::X, std::vector<std::uint32_t>{q});
    circuit.addLayer(std::move(prep));

    for (int s = 0; s < steps; ++s) {
        for (int color = 0; color < 3; ++color) {
            Layer layer{LayerKind::TwoQubit, {}};
            for (std::size_t e = std::size_t(color); e < num_qubits;
                 e += 3) {
                const std::uint32_t a = std::uint32_t(e);
                const std::uint32_t b =
                    std::uint32_t((e + 1) % num_qubits);
                layer.insts.emplace_back(
                    Op::Can, std::vector<std::uint32_t>{a, b},
                    std::vector<double>{params.alphaX(),
                                        params.alphaY(),
                                        params.alphaZ()});
            }
            circuit.addLayer(std::move(layer));
        }
    }
    return circuit;
}

LayeredCircuit
buildHeisenbergRingNative(std::size_t num_qubits, int steps,
                          const HeisenbergParams &params)
{
    casq_assert(num_qubits >= 6 && num_qubits % 3 == 0,
                "ring size must be a positive multiple of 3 for the "
                "three-layer edge partition");

    // The 3-CX fragment is identical for all blocks of a layer;
    // interleaving the k-th instruction of every block keeps the
    // parallel blocks aligned in time.
    const Circuit frag = synthesizeCan(
        params.alphaX(), params.alphaY(), params.alphaZ());

    Circuit flat(num_qubits, 0);
    for (std::uint32_t q = 1; q < num_qubits; q += 2)
        flat.x(q);
    flat.barrier();

    for (int s = 0; s < steps; ++s) {
        for (int color = 0; color < 3; ++color) {
            for (const Instruction &inst : frag.instructions()) {
                for (std::size_t e = std::size_t(color);
                     e < num_qubits; e += 3) {
                    Instruction remapped = inst;
                    for (auto &q : remapped.qubits) {
                        q = (q == 0)
                                ? std::uint32_t(e)
                                : std::uint32_t((e + 1) %
                                                num_qubits);
                    }
                    flat.append(std::move(remapped));
                }
            }
            flat.barrier();
        }
    }
    return stratify(flat);
}

} // namespace casq
