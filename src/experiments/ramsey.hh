/**
 * @file
 * Ramsey characterization protocols (paper Figs. 3 and 4).
 *
 * Probe qubits are prepared in |+>, evolve under d repetitions of a
 * context block (idle periods or spectator gates), and the overlap
 * with |+...+> is computed from X-string expectations.  Oscillations
 * of the fidelity signal coherent errors; their suppression under a
 * given compile strategy is the paper's per-context validation.
 */

#ifndef CASQ_EXPERIMENTS_RAMSEY_HH
#define CASQ_EXPERIMENTS_RAMSEY_HH

#include <functional>
#include <vector>

#include "passes/pipeline.hh"
#include "sim/engine.hh"

namespace casq {

/** Builder of the d-step layered context circuit. */
using ContextBuilder = std::function<LayeredCircuit(int depth)>;

/** One fidelity sample of a Ramsey sweep. */
struct RamseyPoint
{
    int depth = 0;
    double fidelity = 0.0;
    double stderror = 0.0;
};

/**
 * Run the Ramsey protocol: compile builder(d) under the options,
 * execute, and convert the X-string expectations on the probe
 * qubits into the |+...+> overlap.  Each depth runs through
 * SimulationEngine's fused compile->simulate ensemble path; the
 * pool serves whichever of `threads` (compile-era knob, kept for
 * compatibility) and exec.threads asks for more workers (0 = one
 * per core).  Results are bit-identical for every thread count.
 */
std::vector<RamseyPoint> runRamsey(
    const ContextBuilder &builder,
    const std::vector<std::uint32_t> &probes, const Backend &backend,
    const NoiseModel &noise, const CompileOptions &compile,
    const std::vector<int> &depths, const ExecutionOptions &exec,
    int twirl_instances = 8, unsigned threads = 1);

/** |+...+> overlap from the 2^k X-subset expectations. */
double plusStateFidelity(const std::vector<double> &x_subsets);

/** All-X-subset observables over the probe qubits (2^k strings). */
std::vector<PauliString> plusStateObservables(
    std::size_t num_qubits,
    const std::vector<std::uint32_t> &probes);

// --- Fig. 3 context builders (4-qubit chain devices) -------------

/** Case I: two adjacent idle qubits (probes), d idle periods. */
LayeredCircuit buildCaseIdleIdle(std::size_t num_qubits,
                                 std::uint32_t q0, std::uint32_t q1,
                                 int depth, double tau_ns);

/**
 * Cases II/III: repeated ECR(control -> target) with idle
 * spectators next to the control and the target.  Probes choose
 * which case is read out.
 */
LayeredCircuit buildCaseSpectator(std::size_t num_qubits,
                                  std::uint32_t control,
                                  std::uint32_t target, int depth,
                                  const std::vector<std::uint32_t>
                                      &prepared);

/**
 * Case IV: two parallel ECR gates with adjacent controls; each
 * step applies the gate pair twice (ECR is an involution) so the
 * logical circuit is the identity on every qubit.
 */
LayeredCircuit buildCaseControlControl(std::size_t num_qubits,
                                       std::uint32_t ctrl0,
                                       std::uint32_t tgt0,
                                       std::uint32_t ctrl1,
                                       std::uint32_t tgt1, int depth);

// --- Fig. 4 characterizations -------------------------------------

/**
 * Detuning-scan spectroscopy (Fig. 4a): Ramsey with an assumed
 * frame frequency; returns the fidelity per scanned frequency.
 * The context builder supplies the evolution; probes must contain
 * exactly one qubit.
 */
struct SpectroscopyResult
{
    std::vector<double> frequenciesMhz;
    std::vector<double> fidelities;

    /** Frequency of the maximum-fidelity point. */
    double peakMhz() const;
};

SpectroscopyResult runDetuningScan(
    const ContextBuilder &builder, std::uint32_t probe,
    double total_idle_ns, const Backend &backend,
    const NoiseModel &noise, const CompileOptions &compile,
    int depth, const std::vector<double> &frequencies_mhz,
    const ExecutionOptions &exec);

} // namespace casq

#endif // CASQ_EXPERIMENTS_RAMSEY_HH
