/**
 * @file
 * Dynamic-circuit Bell preparation (paper Fig. 9): data qubits in
 * |+>, parity collected on the middle auxiliary qubit, mid-circuit
 * measurement, and a conditional X correction on one data qubit.
 * Qubits idling through the measurement + feedforward window pick
 * up large coherent ZZ errors that only CA-EC can address.
 */

#ifndef CASQ_EXPERIMENTS_DYNAMIC_HH
#define CASQ_EXPERIMENTS_DYNAMIC_HH

#include "pauli/pauli.hh"
#include "circuit/stratify.hh"

namespace casq {

/**
 * Build the 3-qubit chain Bell protocol: qubit 0 and 2 are data,
 * qubit 1 is the measured auxiliary (classical bit 0).
 */
LayeredCircuit buildDynamicBell();

/**
 * Observables whose combination gives the Bell fidelity
 * F = (1 + <XX> - <YY> + <ZZ>) / 4 on the data qubits (0, 2) of a
 * 3-qubit register.
 */
std::vector<PauliString> bellFidelityObservables();

/** Combine the three expectations into the Bell fidelity. */
double bellFidelity(const std::vector<double> &expectations);

} // namespace casq

#endif // CASQ_EXPERIMENTS_DYNAMIC_HH
