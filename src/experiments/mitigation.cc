#include "experiments/mitigation.hh"

namespace casq {

OverheadEstimate
estimateMitigationOverhead(const std::vector<double> &depths,
                           const std::vector<double> &noisy,
                           const std::vector<double> &ideal,
                           double target_depth)
{
    const DecayFit fit = fitScaledDecay(depths, noisy, ideal);
    OverheadEstimate out;
    out.amplitude = fit.amplitude;
    out.lambda = fit.lambda;
    out.overhead = samplingOverhead(fit, target_depth);
    return out;
}

} // namespace casq
