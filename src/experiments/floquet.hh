/**
 * @file
 * Floquet-circuit builders: the Ising-type evolution of paper
 * Fig. 6 and the identity-equivalent Floquet benchmark of Fig. 10.
 */

#ifndef CASQ_EXPERIMENTS_FLOQUET_HH
#define CASQ_EXPERIMENTS_FLOQUET_HH

#include "circuit/stratify.hh"

namespace casq {

/**
 * Floquet Ising chain at the Clifford point (Fig. 6a): boundary
 * qubits prepared in |+>, then per step an even-odd ECR layer, an
 * odd-even ECR layer and a layer of X gates.  The figure's
 * observable is <X_0 X_{n-1}>.
 */
LayeredCircuit buildFloquetIsing(std::size_t num_qubits, int steps);

/**
 * The 6-qubit identity-equivalent Floquet benchmark of Fig. 10a:
 * per step the parallel gate set {ECR(1->0), ECR(2->3), ECR(5->4)}
 * is applied twice (ECR is an involution), exposing the adjacent
 * control-control ZZ (case IV) while the ideal value of P00 on the
 * probe qubits stays 1.
 */
LayeredCircuit buildFloquetIdentity(int steps);

/** Probe qubits whose P00 Fig. 10b reports. */
std::vector<std::uint32_t> floquetIdentityProbes();

} // namespace casq

#endif // CASQ_EXPERIMENTS_FLOQUET_HH
