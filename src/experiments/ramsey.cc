#include "experiments/ramsey.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace casq {

namespace {
constexpr double kTwoPi = 6.28318530717958647692;
} // namespace

std::vector<PauliString>
plusStateObservables(std::size_t num_qubits,
                     const std::vector<std::uint32_t> &probes)
{
    casq_assert(probes.size() <= 8, "too many Ramsey probes");
    const std::size_t count = std::size_t(1) << probes.size();
    std::vector<PauliString> obs;
    obs.reserve(count);
    for (std::size_t mask = 0; mask < count; ++mask) {
        PauliString p(num_qubits);
        for (std::size_t k = 0; k < probes.size(); ++k)
            if (mask & (std::size_t(1) << k))
                p.setOp(probes[k], PauliOp::X);
        obs.push_back(std::move(p));
    }
    return obs;
}

double
plusStateFidelity(const std::vector<double> &x_subsets)
{
    double acc = 0.0;
    for (double v : x_subsets)
        acc += v;
    return acc / double(x_subsets.size());
}

std::vector<RamseyPoint>
runRamsey(const ContextBuilder &builder,
          const std::vector<std::uint32_t> &probes,
          const Backend &backend, const NoiseModel &noise,
          const CompileOptions &compile,
          const std::vector<int> &depths,
          const ExecutionOptions &exec, int twirl_instances,
          unsigned threads)
{
    SimulationEngine engine(backend, noise);
    const std::vector<PauliString> obs =
        plusStateObservables(backend.numQubits(), probes);

    // One pipeline for the whole depth sweep: pass-internal caches
    // (twirl conjugation tables) are built once and reused.  The
    // engine fuses compilation into trajectory execution per depth,
    // so no schedule vector is materialized between the stages.
    PassManager pipeline = buildPipeline(compile);

    std::vector<RamseyPoint> points;
    for (int depth : depths) {
        const LayeredCircuit layered = builder(depth);
        EnsembleRunOptions opts;
        opts.instances = twirl_instances;
        opts.compileSeed = exec.seed + std::uint64_t(depth) * 977;
        opts.trajectories = exec.trajectories;
        opts.seed = exec.seed;
        opts.threads =
            int(ThreadPool::resolveThreads(threads, exec.threads));
        opts.cacheVariants = exec.cacheVariants;
        const RunResult result =
            engine.runEnsemble(layered, pipeline, obs, opts);

        RamseyPoint point;
        point.depth = depth;
        point.fidelity = plusStateFidelity(result.means);
        double var = 0.0;
        for (double se : result.stderrs)
            var += se * se;
        point.stderror = std::sqrt(var) / double(result.means.size());
        points.push_back(point);
    }
    return points;
}

LayeredCircuit
buildCaseIdleIdle(std::size_t num_qubits, std::uint32_t q0,
                  std::uint32_t q1, int depth, double tau_ns)
{
    LayeredCircuit circuit(num_qubits, 0);
    Layer prep{LayerKind::OneQubit, {}};
    prep.insts.emplace_back(Op::H, std::vector<std::uint32_t>{q0});
    prep.insts.emplace_back(Op::H, std::vector<std::uint32_t>{q1});
    circuit.addLayer(std::move(prep));
    for (int d = 0; d < depth; ++d) {
        Layer idle{LayerKind::OneQubit, {}};
        idle.insts.emplace_back(Op::Delay,
                                std::vector<std::uint32_t>{q0},
                                std::vector<double>{tau_ns});
        idle.insts.emplace_back(Op::Delay,
                                std::vector<std::uint32_t>{q1},
                                std::vector<double>{tau_ns});
        circuit.addLayer(std::move(idle));
    }
    return circuit;
}

LayeredCircuit
buildCaseSpectator(std::size_t num_qubits, std::uint32_t control,
                   std::uint32_t target, int depth,
                   const std::vector<std::uint32_t> &prepared)
{
    LayeredCircuit circuit(num_qubits, 0);
    Layer prep{LayerKind::OneQubit, {}};
    for (auto q : prepared)
        prep.insts.emplace_back(Op::H, std::vector<std::uint32_t>{q});
    circuit.addLayer(std::move(prep));
    for (int d = 0; d < depth; ++d) {
        Layer gates{LayerKind::TwoQubit, {}};
        gates.insts.emplace_back(
            Op::ECR, std::vector<std::uint32_t>{control, target});
        circuit.addLayer(std::move(gates));
    }
    return circuit;
}

LayeredCircuit
buildCaseControlControl(std::size_t num_qubits, std::uint32_t ctrl0,
                        std::uint32_t tgt0, std::uint32_t ctrl1,
                        std::uint32_t tgt1, int depth)
{
    LayeredCircuit circuit(num_qubits, 0);
    Layer prep{LayerKind::OneQubit, {}};
    prep.insts.emplace_back(Op::H,
                            std::vector<std::uint32_t>{ctrl0});
    prep.insts.emplace_back(Op::H,
                            std::vector<std::uint32_t>{ctrl1});
    circuit.addLayer(std::move(prep));
    for (int d = 0; d < depth; ++d) {
        // ECR is an involution: applying the parallel pair twice
        // leaves the logical state unchanged while exposing the
        // aligned control-control echoes.
        for (int rep = 0; rep < 2; ++rep) {
            Layer gates{LayerKind::TwoQubit, {}};
            gates.insts.emplace_back(
                Op::ECR, std::vector<std::uint32_t>{ctrl0, tgt0});
            gates.insts.emplace_back(
                Op::ECR, std::vector<std::uint32_t>{ctrl1, tgt1});
            circuit.addLayer(std::move(gates));
        }
    }
    return circuit;
}

double
SpectroscopyResult::peakMhz() const
{
    casq_assert(!fidelities.empty(), "empty spectroscopy result");
    std::size_t best = 0;
    for (std::size_t i = 1; i < fidelities.size(); ++i)
        if (fidelities[i] > fidelities[best])
            best = i;
    return frequenciesMhz[best];
}

SpectroscopyResult
runDetuningScan(const ContextBuilder &builder, std::uint32_t probe,
                double total_idle_ns, const Backend &backend,
                const NoiseModel &noise,
                const CompileOptions &compile, int depth,
                const std::vector<double> &frequencies_mhz,
                const ExecutionOptions &exec)
{
    SimulationEngine engine(backend, noise);
    std::vector<PauliString> obs{
        PauliString::single(backend.numQubits(), probe, PauliOp::X),
        PauliString::single(backend.numQubits(), probe, PauliOp::Y)};

    PassManager pipeline = buildPipeline(compile);
    const LayeredCircuit layered = builder(depth);
    EnsembleRunOptions opts;
    opts.instances = 4;
    opts.compileSeed = exec.seed;
    opts.trajectories = exec.trajectories;
    opts.seed = exec.seed;
    opts.threads = int(ThreadPool::resolveThreads(1, exec.threads));
    opts.cacheVariants = exec.cacheVariants;
    const RunResult result =
        engine.runEnsemble(layered, pipeline, obs, opts);
    const double x = result.means[0];
    const double y = result.means[1];

    // Measuring X in a frame rotating at f for the total idle time
    // corresponds to the rotated quadrature cos(phi) X + sin(phi) Y.
    SpectroscopyResult out;
    out.frequenciesMhz = frequencies_mhz;
    for (double f : frequencies_mhz) {
        const double phi = kTwoPi * f * total_idle_ns * 1e-3;
        const double proj = std::cos(phi) * x + std::sin(phi) * y;
        out.fidelities.push_back((1.0 + proj) / 2.0);
    }
    return out;
}

} // namespace casq
