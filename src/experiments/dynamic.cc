#include "experiments/dynamic.hh"

#include "common/logging.hh"

namespace casq {

LayeredCircuit
buildDynamicBell()
{
    LayeredCircuit circuit(3, 1);

    Layer prep{LayerKind::OneQubit, {}};
    prep.insts.emplace_back(Op::H, std::vector<std::uint32_t>{0});
    prep.insts.emplace_back(Op::H, std::vector<std::uint32_t>{2});
    circuit.addLayer(std::move(prep));

    Layer cx0{LayerKind::TwoQubit, {}};
    cx0.insts.emplace_back(Op::CX, std::vector<std::uint32_t>{0, 1});
    circuit.addLayer(std::move(cx0));

    Layer cx2{LayerKind::TwoQubit, {}};
    cx2.insts.emplace_back(Op::CX, std::vector<std::uint32_t>{2, 1});
    circuit.addLayer(std::move(cx2));

    // Parity readout and feedforward correction: |q0 q2> collapses
    // onto the even- or odd-parity Bell pair; X on q2 fixes odd.
    Layer dynamic{LayerKind::Dynamic, {}};
    Instruction meas(Op::Measure, {1});
    meas.cbit = 0;
    dynamic.insts.push_back(std::move(meas));
    Instruction corr(Op::X, {2});
    corr.condBit = 0;
    corr.condValue = 1;
    dynamic.insts.push_back(std::move(corr));
    circuit.addLayer(std::move(dynamic));

    return circuit;
}

std::vector<PauliString>
bellFidelityObservables()
{
    return {PauliString::two(3, 0, PauliOp::X, 2, PauliOp::X),
            PauliString::two(3, 0, PauliOp::Y, 2, PauliOp::Y),
            PauliString::two(3, 0, PauliOp::Z, 2, PauliOp::Z)};
}

double
bellFidelity(const std::vector<double> &expectations)
{
    casq_assert(expectations.size() == 3,
                "bellFidelity needs <XX>, <YY>, <ZZ>");
    return (1.0 + expectations[0] - expectations[1] +
            expectations[2]) /
           4.0;
}

} // namespace casq
