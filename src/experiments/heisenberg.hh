/**
 * @file
 * First-order Trotterized Heisenberg-ring evolution (paper Fig. 7):
 * a ring of spins with exp(-iHt) decomposed into canonical
 * two-qubit blocks can(-J dt/2, ...) over three vertex-disjoint
 * edge layers per time step, matching the heavy-hex embedding the
 * paper uses.
 */

#ifndef CASQ_EXPERIMENTS_HEISENBERG_HH
#define CASQ_EXPERIMENTS_HEISENBERG_HH

#include "circuit/stratify.hh"

namespace casq {

/** Heisenberg model parameters (paper Eq. 7). */
struct HeisenbergParams
{
    double jx = 1.0;
    double jy = 1.0;
    double jz = 1.0;
    double dt = 1.4; //!< Trotter step (sets the can angles)

    /** Canonical-gate angle per axis: -J * dt / 2. */
    double alphaX() const { return -jx * dt / 2.0; }
    double alphaY() const { return -jy * dt / 2.0; }
    double alphaZ() const { return -jz * dt / 2.0; }
};

/**
 * Build `steps` Trotter steps on an n-qubit ring (n even), with a
 * Neel-type initial layer (X on odd qubits) so single-qubit
 * observables such as <Z_2> evolve non-trivially.  Each step uses
 * three vertex-disjoint can layers (edges i = 0, 1, 2 mod 3).
 */
LayeredCircuit buildHeisenbergRing(std::size_t num_qubits, int steps,
                                   const HeisenbergParams &params =
                                       {});

/**
 * The hardware form of the same circuit: every canonical block is
 * expanded into its 3-CX realization (paper Fig. 1d), with the
 * expansions of parallel blocks interleaved so the sub-gates of a
 * layer run simultaneously.  At 12 qubits and 5 steps this is the
 * paper's 180-CNOT, CNOT-depth-45 circuit.
 */
LayeredCircuit buildHeisenbergRingNative(
    std::size_t num_qubits, int steps,
    const HeisenbergParams &params = {});

} // namespace casq

#endif // CASQ_EXPERIMENTS_HEISENBERG_HH
