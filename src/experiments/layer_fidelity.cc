#include "experiments/layer_fidelity.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/statistics.hh"
#include "common/thread_pool.hh"
#include "pauli/clifford.hh"

namespace casq {

std::vector<LayerUnit>
partitionUnits(const LayerSpec &spec, const Backend &backend)
{
    std::vector<LayerUnit> units;
    for (const auto &[c, t] : spec.gates)
        units.push_back(LayerUnit{{c, t}, true});

    // Greedily pair up coupled idle qubits; singles remain alone.
    std::set<std::uint32_t> remaining(spec.idles.begin(),
                                      spec.idles.end());
    for (auto q : spec.idles) {
        if (!remaining.count(q))
            continue;
        bool paired = false;
        for (auto p : backend.coupling().neighbors(q)) {
            if (p != q && remaining.count(p)) {
                units.push_back(LayerUnit{{q, p}, false});
                remaining.erase(q);
                remaining.erase(p);
                paired = true;
                break;
            }
        }
        if (!paired) {
            units.push_back(LayerUnit{{q}, false});
            remaining.erase(q);
        }
    }
    return units;
}

namespace {

/** Random non-identity Pauli ops for a unit. */
std::vector<PauliOp>
samplePauli(const LayerUnit &unit, Rng &rng)
{
    std::vector<PauliOp> ops;
    do {
        ops.clear();
        for (std::size_t k = 0; k < unit.qubits.size(); ++k)
            ops.push_back(PauliOp(rng.uniformInt(4)));
        bool nontrivial = false;
        for (auto op : ops)
            nontrivial |= op != PauliOp::I;
        if (nontrivial)
            return ops;
    } while (true);
}

/** Append eigenstate-preparation layers for the sampled Paulis. */
void
appendPreparation(LayeredCircuit &circuit,
                  const std::vector<LayerUnit> &units,
                  const std::vector<std::vector<PauliOp>> &paulis)
{
    Layer h_layer{LayerKind::OneQubit, {}};
    Layer s_layer{LayerKind::OneQubit, {}};
    for (std::size_t u = 0; u < units.size(); ++u) {
        for (std::size_t k = 0; k < units[u].qubits.size(); ++k) {
            const std::uint32_t q = units[u].qubits[k];
            switch (paulis[u][k]) {
              case PauliOp::X:
                h_layer.insts.emplace_back(
                    Op::H, std::vector<std::uint32_t>{q});
                break;
              case PauliOp::Y:
                // S H |0> is the +1 eigenstate of Y.
                h_layer.insts.emplace_back(
                    Op::H, std::vector<std::uint32_t>{q});
                s_layer.insts.emplace_back(
                    Op::S, std::vector<std::uint32_t>{q});
                break;
              default:
                break;
            }
        }
    }
    if (!h_layer.insts.empty())
        circuit.addLayer(std::move(h_layer));
    if (!s_layer.insts.empty())
        circuit.addLayer(std::move(s_layer));
}

/** Evolve a unit Pauli through d ideal applications of its gate. */
std::pair<std::vector<PauliOp>, int>
evolvePauli(const LayerUnit &unit, const std::vector<PauliOp> &ops,
            const Conjugation2Q *table, int depth)
{
    if (!unit.isGate || table == nullptr)
        return {ops, 1};
    Pauli2 p{ops[0], ops[1]};
    int sign = 1;
    for (int d = 0; d < depth; ++d) {
        const auto image = table->conjugate(p);
        casq_assert(image.has_value(),
                    "layer gate must be Clifford for the protocol");
        p = image->pauli;
        sign *= image->sign;
    }
    return {{p.op0, p.op1}, sign};
}

} // namespace

LayerSpec
fig8LayerSpec()
{
    // Subsystem order of fig8Qubits(): 37, 38, 39, 40, 52, 56, 57,
    // 58, 59, 60 -> local 0..9.  Gates: ECR(37->52), ECR(38->39),
    // ECR(57->58); idle: 40, 56, 59, 60.  Controls 37 and 38 are
    // adjacent (the case-IV pair the paper highlights).
    LayerSpec spec;
    spec.gates = {{0, 4}, {1, 2}, {6, 7}};
    spec.idles = {3, 5, 8, 9};
    return spec;
}

std::vector<std::uint32_t>
fig8Qubits()
{
    return {37, 38, 39, 40, 52, 56, 57, 58, 59, 60};
}

LayerFidelityResult
measureLayerFidelity(const LayerSpec &spec, const Backend &backend,
                     const NoiseModel &noise,
                     const CompileOptions &compile,
                     const LayerFidelityOptions &options,
                     const ExecutionOptions &exec)
{
    const std::vector<LayerUnit> units =
        partitionUnits(spec, backend);

    // One engine for the whole protocol: its pool outlives every
    // (sample, depth) point and its variant cache serves any
    // schedule the sweep revisits.
    SimulationEngine engine(backend, noise);
    const unsigned pool_threads =
        ThreadPool::resolveThreads(options.threads, exec.threads);

    // One pipeline reused across every Pauli sample and depth.
    PassManager pipeline = buildPipeline(compile);

    // Base layer (one layered TwoQubit stratum).
    Layer gate_layer{LayerKind::TwoQubit, {}};
    for (const auto &[c, t] : spec.gates)
        gate_layer.insts.emplace_back(
            Op::ECR, std::vector<std::uint32_t>{c, t});

    const Conjugation2Q ecr_table(gateUnitary(Op::ECR));

    // Per unit, per depth: accumulated sign-corrected expectations.
    std::vector<std::vector<double>> sums(
        units.size(),
        std::vector<double>(options.depths.size(), 0.0));

    Rng pauli_rng(exec.seed ^ 0xFEEDFACEull);
    for (int r = 0; r < options.pauliSamples; ++r) {
        std::vector<std::vector<PauliOp>> paulis;
        for (const auto &unit : units)
            paulis.push_back(samplePauli(unit, pauli_rng));

        for (std::size_t di = 0; di < options.depths.size(); ++di) {
            const int depth = options.depths[di];
            LayeredCircuit circuit(backend.numQubits(), 0);
            appendPreparation(circuit, units, paulis);
            for (int d = 0; d < depth; ++d)
                circuit.addLayer(gate_layer);

            std::vector<PauliString> observables;
            std::vector<int> signs;
            for (std::size_t u = 0; u < units.size(); ++u) {
                const auto [ops, sign] = evolvePauli(
                    units[u], paulis[u],
                    units[u].isGate ? &ecr_table : nullptr, depth);
                PauliString obs(backend.numQubits());
                for (std::size_t k = 0; k < ops.size(); ++k)
                    obs.setOp(units[u].qubits[k], ops[k]);
                observables.push_back(std::move(obs));
                signs.push_back(sign);
            }

            EnsembleRunOptions run;
            run.instances = options.twirlInstances;
            run.compileSeed = exec.seed + 13 * r + 131 * depth;
            run.trajectories = exec.trajectories;
            run.seed = exec.seed;
            run.threads = int(pool_threads);
            run.cacheVariants = exec.cacheVariants;
            const RunResult result = engine.runEnsemble(
                circuit, pipeline, observables, run);
            for (std::size_t u = 0; u < units.size(); ++u)
                sums[u][di] += signs[u] * result.means[u];
        }
    }

    LayerFidelityResult out;
    out.units = units;
    std::vector<double> xs(options.depths.begin(),
                           options.depths.end());
    out.layerFidelity = 1.0;
    for (std::size_t u = 0; u < units.size(); ++u) {
        std::vector<double> ys;
        for (double s : sums[u])
            ys.push_back(s / options.pauliSamples);
        DecayFit fit = fitExpDecay(xs, ys);
        const double lambda = std::clamp(fit.lambda, 1e-6, 1.0);
        const double dim = std::pow(4.0, units[u].qubits.size());
        const double fidelity = ((dim - 1.0) * lambda + 1.0) / dim;
        out.unitLambdas.push_back(lambda);
        out.unitFidelities.push_back(fidelity);
        out.layerFidelity *= fidelity;
    }
    out.gamma = 1.0 / (out.layerFidelity * out.layerFidelity);
    return out;
}

} // namespace casq
