#include "experiments/floquet.hh"

#include "common/logging.hh"

namespace casq {

LayeredCircuit
buildFloquetIsing(std::size_t num_qubits, int steps)
{
    casq_assert(num_qubits >= 4 && num_qubits % 2 == 0,
                "Floquet Ising needs an even chain of >= 4");
    LayeredCircuit circuit(num_qubits, 0);

    Layer prep{LayerKind::OneQubit, {}};
    prep.insts.emplace_back(Op::H, std::vector<std::uint32_t>{0});
    prep.insts.emplace_back(
        Op::H,
        std::vector<std::uint32_t>{std::uint32_t(num_qubits - 1)});
    circuit.addLayer(std::move(prep));

    // Each Floquet step is two half-steps of (even-odd ECR,
    // odd-even ECR with reversed control orientation, X layer); at
    // this Clifford point the boundary stabilizer X0 X_{n-1}
    // alternates sign exactly: <X0 X_{n-1}>(d) = (-1)^d.
    for (int s = 0; s < 2 * steps; ++s) {
        Layer even{LayerKind::TwoQubit, {}};
        for (std::uint32_t q = 0; q + 1 < num_qubits; q += 2)
            even.insts.emplace_back(
                Op::ECR, std::vector<std::uint32_t>{q, q + 1});
        circuit.addLayer(std::move(even));

        Layer odd{LayerKind::TwoQubit, {}};
        for (std::uint32_t q = 1; q + 1 < num_qubits; q += 2)
            odd.insts.emplace_back(
                Op::ECR, std::vector<std::uint32_t>{q + 1, q});
        circuit.addLayer(std::move(odd));

        Layer flips{LayerKind::OneQubit, {}};
        for (std::uint32_t q = 0; q < num_qubits; ++q)
            flips.insts.emplace_back(Op::X,
                                     std::vector<std::uint32_t>{q});
        circuit.addLayer(std::move(flips));
    }
    return circuit;
}

LayeredCircuit
buildFloquetIdentity(int steps)
{
    LayeredCircuit circuit(6, 0);

    Layer prep{LayerKind::OneQubit, {}};
    for (std::uint32_t q : {1u, 2u, 5u})
        prep.insts.emplace_back(Op::H, std::vector<std::uint32_t>{q});
    circuit.addLayer(std::move(prep));

    // Each step interleaves the parallel gate set (adjacent
    // controls on qubits 1 and 2: the case-IV ZZ that only EC can
    // address) with jointly-idle periods (the context CA-DD
    // addresses); the gate set is applied twice per step so the
    // logical circuit stays the identity.
    auto add_gates = [&]() {
        Layer gates{LayerKind::TwoQubit, {}};
        gates.insts.emplace_back(Op::ECR,
                                 std::vector<std::uint32_t>{1, 0});
        gates.insts.emplace_back(Op::ECR,
                                 std::vector<std::uint32_t>{2, 3});
        gates.insts.emplace_back(Op::ECR,
                                 std::vector<std::uint32_t>{4, 5});
        circuit.addLayer(std::move(gates));
    };
    auto add_idle = [&]() {
        Layer idle{LayerKind::OneQubit, {}};
        for (std::uint32_t q = 0; q < 6; ++q)
            idle.insts.emplace_back(Op::Delay,
                                    std::vector<std::uint32_t>{q},
                                    std::vector<double>{400.0});
        circuit.addLayer(std::move(idle));
    };
    for (int s = 0; s < steps; ++s) {
        add_gates();
        add_idle();
        add_gates();
        add_idle();
    }

    // Undo the preparation so that P00 on the probes is ideally 1.
    Layer unprep{LayerKind::OneQubit, {}};
    for (std::uint32_t q : {1u, 2u, 5u})
        unprep.insts.emplace_back(Op::H,
                                  std::vector<std::uint32_t>{q});
    circuit.addLayer(std::move(unprep));
    return circuit;
}

std::vector<std::uint32_t>
floquetIdentityProbes()
{
    return {1, 2};
}

} // namespace casq
