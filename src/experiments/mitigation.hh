/**
 * @file
 * Error-mitigation overhead estimation (paper Sec. V B / Fig. 7d).
 *
 * The noisy signal is modelled as A * lambda^d times the ideal
 * signal (a global depolarizing rescaling); rescaling the estimator
 * back multiplies its variance by (A lambda^d)^-2, which is the
 * sampling overhead the figure reports.
 */

#ifndef CASQ_EXPERIMENTS_MITIGATION_HH
#define CASQ_EXPERIMENTS_MITIGATION_HH

#include <vector>

#include "common/statistics.hh"

namespace casq {

/** Overhead estimate for one suppression strategy. */
struct OverheadEstimate
{
    double amplitude = 1.0; //!< fitted SPAM-like prefactor A
    double lambda = 1.0;    //!< fitted per-step signal retention
    double overhead = 1.0;  //!< (A lambda^d)^-2 at the target depth
};

/**
 * Fit noisy_d ~ A lambda^d ideal_d and evaluate the sampling
 * overhead at target_depth.
 */
OverheadEstimate estimateMitigationOverhead(
    const std::vector<double> &depths,
    const std::vector<double> &noisy,
    const std::vector<double> &ideal, double target_depth);

} // namespace casq

#endif // CASQ_EXPERIMENTS_MITIGATION_HH
