/**
 * @file
 * Layer-fidelity benchmarking (paper Sec. V C / Fig. 8, following
 * McKay et al.).
 *
 * The qubits of a layer are partitioned into disjoint units (gate
 * pairs, adjacent idle pairs, single idle qubits); random Pauli
 * eigenstates are prepared per unit, d twirled copies of the layer
 * are applied, and the decay of the unit Pauli expectations over d
 * yields a per-unit process fidelity.  The layer fidelity is the
 * product over units, and the PEC sampling-overhead factor is
 * gamma = LF^-2.
 */

#ifndef CASQ_EXPERIMENTS_LAYER_FIDELITY_HH
#define CASQ_EXPERIMENTS_LAYER_FIDELITY_HH

#include "passes/pipeline.hh"
#include "sim/engine.hh"

namespace casq {

/** Definition of the benchmarked layer. */
struct LayerSpec
{
    /** Simultaneous two-qubit gates (control, target). */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> gates;

    /** Idle qubits included in the benchmark. */
    std::vector<std::uint32_t> idles;
};

/** A disjoint benchmarking unit of the layer. */
struct LayerUnit
{
    std::vector<std::uint32_t> qubits;
    bool isGate = false;
};

/**
 * Partition into gate pairs, coupled idle pairs (greedy matching)
 * and leftover single idles (the paper's disjoint groups).
 */
std::vector<LayerUnit> partitionUnits(const LayerSpec &spec,
                                      const Backend &backend);

/** Result of the layer-fidelity protocol. */
struct LayerFidelityResult
{
    double layerFidelity = 0.0;
    double gamma = 0.0; //!< PEC overhead factor, LF^-2
    std::vector<LayerUnit> units;
    std::vector<double> unitLambdas;    //!< per-layer decay
    std::vector<double> unitFidelities; //!< process fidelities
};

/** Protocol tunables. */
struct LayerFidelityOptions
{
    std::vector<int> depths{1, 2, 4, 8, 16};
    int pauliSamples = 6; //!< random Pauli settings per unit
    int twirlInstances = 8;

    /**
     * Workers of the fused compile+simulate pool (1 = inline,
     * 0 = one per core); the protocol also honours exec.threads
     * and uses whichever asks for more.  Never changes results.
     */
    unsigned threads = 1;
};

/**
 * Run the protocol for the layer under one compile strategy and
 * return the layer fidelity with per-unit detail.
 */
LayerFidelityResult measureLayerFidelity(
    const LayerSpec &spec, const Backend &backend,
    const NoiseModel &noise, const CompileOptions &compile,
    const LayerFidelityOptions &options,
    const ExecutionOptions &exec);

/** The sparse 10-qubit layer of paper Fig. 8 on fake_nazca labels. */
LayerSpec fig8LayerSpec();

/** The 10 physical qubits of the Fig. 8 layer, in subsystem order. */
std::vector<std::uint32_t> fig8Qubits();

} // namespace casq

#endif // CASQ_EXPERIMENTS_LAYER_FIDELITY_HH
