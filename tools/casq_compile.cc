/**
 * @file
 * Command-line compiler driver: build a synthetic workload, compile
 * it under a named strategy, and report the pipeline's per-pass
 * timings and schedule statistics.
 *
 *   $ ./casq_compile --strategy ca-dd --qubits 8 --depth 16
 *   $ ./casq_compile --list-strategies
 *   $ ./casq_compile --strategy ca-ec+dd --dump
 *   $ ./casq_compile --ensemble 100 --threads 4
 *   $ ./casq_compile --ensemble 16 --simulate --traj 400 --threads 4
 *
 * Demonstrates the composable pass API end to end: strategy names
 * parse via strategyFromName(), buildPipeline() assembles the pass
 * list, and PassManager::compile() returns the CompilationResult
 * whose metrics and properties are printed below.  With --ensemble,
 * PassManager::runEnsemble() compiles the twirled instances on
 * --threads workers and the wall-time report shows the parallel
 * throughput (the schedules are identical for every thread count).
 * Adding --simulate hands the ensemble to SimulationEngine's fused
 * compile->simulate path instead: instances stream straight into
 * Monte-Carlo trajectories on one pool and the <Z_q> estimates are
 * printed with the end-to-end throughput (bit-identical for every
 * thread count).
 */

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>

#include <chrono>

#include "bench_common.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "passes/builtin.hh"
#include "passes/pipeline.hh"
#include "sim/engine.hh"

using namespace casq;

namespace {

struct CliOptions
{
    Strategy strategy = Strategy::CaDd;
    std::size_t qubits = 8;
    int depth = 16;
    std::uint64_t seed = 2024;
    int ensemble = 0;     //!< 0 = single-instance compile
    unsigned threads = 1; //!< ensemble workers (0 = one per core)
    bool simulate = false; //!< fused compile->simulate run
    int trajectories = 400; //!< Monte-Carlo budget for --simulate

    /**
     * Simulation substrate for --simulate.  Auto is safe as the
     * default: the standard noise model is non-Clifford, so paper
     * workloads resolve to the dense path bit-identically, while
     * Clifford workloads (--noise pauli/ideal) pick up the
     * stabilizer tableau and scale past the 24-qubit dense limit.
     */
    SimBackendKind simBackend = SimBackendKind::Auto;

    /**
     * Trajectory prefix-state checkpoint reuse for --simulate.
     * Auto vs off never changes any result bit (CI diffs the two
     * in hexfloat), so auto is always safe.
     */
    PrefixStateMode prefixState = PrefixStateMode::Auto;
    std::string noise = "standard"; //!< noise recipe (docs/noise.md)
    bool twirl = true;
    bool lateTwirl = true; //!< false = historical twirl-first order
    double caecMinAngle = -1.0; //!< < 0 = CaecOptions default
    bool caecInsertRzz = true;  //!< allow explicit rzz insertions
    bool lowerToNative = false;
    bool analyzeIdle = false;
    bool dump = false;
    bool hexfloat = false; //!< bit-exact --simulate estimates
};

void
usage(const char *prog)
{
    std::cout
        << "usage: " << prog << " [options]\n"
        << "  --strategy NAME   suppression strategy (default ca-dd)\n"
        << "  --qubits N        chain length (default 8)\n"
        << "  --depth D         ECR/idle layer pairs (default 16)\n"
        << "  --seed S          twirl sampling seed (default 2024)\n"
        << "  --ensemble M      compile M twirled instances and\n"
        << "                    report the ensemble wall time\n"
        << "  --threads N       ensemble-compilation workers\n"
        << "                    (default 1; 0 = one per core)\n"
        << "  --simulate        stream the ensemble through the\n"
        << "                    fused compile->simulate engine and\n"
        << "                    report <Z_q> with throughput\n"
        << "  --traj N          trajectories for --simulate\n"
        << "                    (default 400)\n"
        << "  --backend B       simulation substrate for --simulate:\n"
        << "                    auto|dense|stabilizer (default auto;\n"
        << "                    see docs/backends.md)\n"
        << "  --prefix-state M  trajectory prefix-state checkpoint\n"
        << "                    reuse for --simulate: auto|off\n"
        << "                    (default auto; bit-identical)\n"
        << "  --noise M         noise recipe for --simulate:\n"
        << "                    base[:scale] of standard|pauli|\n"
        << "                    ideal|coherent plus +corr[:sig[:len]]\n"
        << "                    and +drift[:rate] extras (default\n"
        << "                    standard; pauli keeps twirled\n"
        << "                    circuits Clifford; docs/noise.md)\n"
        << "  --no-twirl        disable Pauli twirling\n"
        << "  --twirl-first     twirl -- and, for the CA-EC\n"
        << "                    strategies, run the compensation\n"
        << "                    walk -- before lowering (the\n"
        << "                    historical A/B ordering; schedules\n"
        << "                    are byte-identical for every\n"
        << "                    strategy, the prefix cache\n"
        << "                    disengages)\n"
        << "  --caec-min-angle R  drop CA-EC compensations smaller\n"
        << "                    than R radians (default "
        << CaecOptions{}.minAngle << ")\n"
        << "  --caec-no-rzz     never insert explicit rzz\n"
        << "                    compensation pulses (absorb or\n"
        << "                    drop instead)\n"
        << "  --hexfloat        print --simulate estimates as\n"
        << "                    bit-exact hexfloat (diffable)\n"
        << "  --native          lower to the native gate set\n"
        << "  --analyze-idle    report residual idle windows after\n"
        << "                    compilation (grafts an analysis pass)\n"
        << "  --dump            print the full schedule\n"
        << "  --verbose         per-pass debug logging\n"
        << "  --list-strategies print known strategy names\n";
}

/** Alternating ECR / idle layers on a chain (cf. perf_passes). */
LayeredCircuit
syntheticWorkload(std::size_t n, int depth)
{
    return bench::syntheticChainWorkload(n, depth,
                                         /*idle_layers=*/true);
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc)
                return argv[++i];
            return nullptr;
        };
        if (std::strcmp(argv[i], "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else if (std::strcmp(argv[i], "--list-strategies") == 0) {
            for (Strategy s : allStrategies())
                std::cout << strategyName(s) << "\n";
            return 0;
        } else if (std::strcmp(argv[i], "--no-twirl") == 0) {
            cli.twirl = false;
        } else if (std::strcmp(argv[i], "--twirl-first") == 0) {
            cli.lateTwirl = false;
        } else if (std::strcmp(argv[i], "--caec-no-rzz") == 0) {
            cli.caecInsertRzz = false;
        } else if (std::strcmp(argv[i], "--hexfloat") == 0) {
            cli.hexfloat = true;
        } else if (std::strcmp(argv[i], "--native") == 0) {
            cli.lowerToNative = true;
        } else if (std::strcmp(argv[i], "--simulate") == 0) {
            cli.simulate = true;
        } else if (std::strcmp(argv[i], "--analyze-idle") == 0) {
            cli.analyzeIdle = true;
        } else if (std::strcmp(argv[i], "--dump") == 0) {
            cli.dump = true;
        } else if (std::strcmp(argv[i], "--verbose") == 0) {
            setLogLevel(LogLevel::Debug);
        } else if (const char *v = value("--strategy")) {
            const auto parsed = strategyFromName(v);
            if (!parsed) {
                std::cerr << "unknown strategy '" << v
                          << "'; try --list-strategies\n";
                return 1;
            }
            cli.strategy = *parsed;
        } else if (const char *v = value("--qubits")) {
            cli.qubits = std::size_t(
                bench::checkedInt("--qubits", v, 1, 1 << 20));
        } else if (const char *v = value("--depth")) {
            cli.depth = int(bench::checkedInt(
                "--depth", v, 0,
                std::numeric_limits<int>::max()));
        } else if (const char *v = value("--caec-min-angle")) {
            cli.caecMinAngle =
                bench::checkedPositiveDouble("--caec-min-angle", v);
        } else if (const char *v = value("--seed")) {
            cli.seed = bench::checkedUInt64("--seed", v);
        } else if (const char *v = value("--ensemble")) {
            cli.ensemble = int(bench::checkedInt(
                "--ensemble", v, 0,
                std::numeric_limits<int>::max()));
        } else if (const char *v = value("--backend")) {
            const auto parsed = simBackendKindFromName(v);
            if (!parsed) {
                std::cerr << "unknown backend '" << v
                          << "'; expected auto, dense or "
                             "stabilizer\n";
                return 1;
            }
            cli.simBackend = *parsed;
        } else if (const char *v = value("--prefix-state")) {
            const auto parsed = prefixStateModeFromName(v);
            if (!parsed) {
                std::cerr << "unknown prefix-state mode '" << v
                          << "'; expected auto or off\n";
                return 1;
            }
            cli.prefixState = *parsed;
        } else if (const char *v = value("--noise")) {
            cli.noise = v;
            try {
                noiseModelFromRecipe(cli.noise);
            } catch (const SerializeError &err) {
                std::cerr << "bad noise recipe '" << v
                          << "': " << err.what() << "\n";
                return 1;
            }
        } else if (const char *v = value("--traj")) {
            cli.trajectories = int(bench::checkedInt(
                "--traj", v, 1,
                std::numeric_limits<int>::max()));
        } else if (const char *v = value("--threads")) {
            cli.threads = unsigned(
                bench::checkedInt("--threads", v, 0, 4096));
        } else {
            std::cerr << "unknown argument '" << argv[i] << "'\n";
            usage(argv[0]);
            return 1;
        }
    }

    const Backend backend = makeFakeLinear(cli.qubits, 7);
    const LayeredCircuit logical =
        syntheticWorkload(cli.qubits, cli.depth);

    CompileOptions options;
    options.strategy = cli.strategy;
    options.twirl = cli.twirl;
    options.lateTwirl = cli.lateTwirl;
    options.lowerToNative = cli.lowerToNative;
    if (cli.caecMinAngle >= 0.0)
        options.caec.minAngle = cli.caecMinAngle;
    options.caec.insertRzz = cli.caecInsertRzz;

    const bool uses_caec = cli.strategy == Strategy::Ec ||
                           cli.strategy == Strategy::EcAlignedDd ||
                           cli.strategy == Strategy::Combined;
    PassManager pipeline = buildPipeline(options);
    if (cli.analyzeIdle)
        pipeline.emplace<IdleAnalysisPass>(
            options.cadd.minDuration);
    std::cout << "strategy: " << strategyName(cli.strategy)
              << "\npipeline:";
    for (const std::string &name : pipeline.passNames())
        std::cout << " " << name;
    // Every strategy routes through the same ordering now; the
    // only split left is the lateTwirl A/B switch.
    std::cout << "\nordering: "
              << (cli.lateTwirl ? "late (deterministic prefix: "
                : "twirl-first (prefix cache disengaged; "
                  "deterministic prefix: ")
              << pipeline.stochasticPrefixLength() << " of "
              << pipeline.passNames().size() << " passes)\n";
    if (uses_caec)
        std::cout << "ca-ec options: min angle "
                  << options.caec.minAngle << " rad, rzz insertion "
                  << (options.caec.insertRzz ? "on" : "off") << "\n";
    std::cout << "\n";

    if (cli.simulate) {
        // Fused compile->simulate: instances stream out of the
        // pipeline straight into their trajectory share on one
        // pool -- no schedule vector in between (which is also why
        // there is nothing for --dump to print here).
        if (cli.dump)
            std::cout << "(--dump ignored with --simulate: the "
                         "fused path materializes no schedule)\n";
        const NoiseModel noise = noiseModelFromRecipe(cli.noise);
        SimulationEngine engine(backend, noise);
        std::vector<PauliString> obs;
        for (std::uint32_t q = 0; q < cli.qubits; ++q)
            obs.push_back(PauliString::single(cli.qubits, q,
                                              PauliOp::Z));
        EnsembleRunOptions run;
        run.instances = std::max(1, cli.ensemble);
        run.compileSeed = cli.seed;
        run.trajectories = cli.trajectories;
        run.seed = cli.seed;
        run.threads = int(cli.threads);
        run.backend = cli.simBackend;
        run.prefixState = cli.prefixState;
        // A deterministic pipeline compiles a single instance no
        // matter what --ensemble asked for.
        const int instances =
            pipeline.stochastic() ? run.instances : 1;
        const auto begin = std::chrono::steady_clock::now();
        const RunResult result =
            engine.runEnsemble(logical, pipeline, obs, run);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - begin)
                .count();
        std::cout << "fused ensemble: " << instances
                  << " instances, " << result.trajectories
                  << " trajectories on " << cli.threads
                  << " thread" << (cli.threads == 1 ? "" : "s")
                  << (cli.threads == 0 ? " (all cores)" : "")
                  << "\n"
                  << std::fixed << std::setprecision(3)
                  << "wall time: " << wall_ms << " ms ("
                  << std::setprecision(1)
                  << 1e3 * double(result.trajectories) / wall_ms
                  << " trajectories/s)\n"
                  << "backend: "
                  << simBackendKindName(cli.simBackend) << " ("
                  << result.stabilizerTrajectories << " of "
                  << result.trajectories
                  << " trajectories on the stabilizer tableau, "
                  << (result.trajectories -
                      result.stabilizerTrajectories)
                  << " dense)\n"
                  << "prefix state: "
                  << prefixStateModeName(cli.prefixState) << " ("
                  << result.prefixStateHits << " of "
                  << result.trajectories
                  << " trajectories forked from a checkpoint)\n";
        // Hexfloat estimates are bit-exact, so runs that must agree
        // (late-twirl vs twirl-first, any thread count) diff clean;
        // CI gates the orderings exactly that way.
        if (cli.hexfloat)
            std::cout << std::hexfloat;
        else
            std::cout << std::setprecision(6);
        for (std::uint32_t q = 0; q < cli.qubits; ++q)
            std::cout << "<Z_" << q << "> = " << result.means[q]
                      << " +- " << result.stderrs[q] << "\n";
        return 0;
    }

    if (cli.ensemble > 0) {
        EnsembleOptions ensemble;
        ensemble.instances = cli.ensemble;
        ensemble.seed = cli.seed;
        ensemble.threads = cli.threads;
        const EnsembleResult result =
            pipeline.runEnsemble(logical, backend, ensemble);

        const std::size_t count = result.instances.size();
        std::cout << "ensemble: " << count << " instance"
                  << (count == 1 ? "" : "s") << " on "
                  << cli.threads << " thread"
                  << (cli.threads == 1 ? "" : "s")
                  << (cli.threads == 0 ? " (all cores)" : "")
                  << "\n";
        if (result.prefixLength > 0)
            std::cout << "prefix cache: " << result.prefixLength
                      << " deterministic pass"
                      << (result.prefixLength == 1 ? "" : "es")
                      << " compiled once, served "
                      << result.prefixHits << " instance"
                      << (result.prefixHits == 1 ? "" : "s")
                      << " from the snapshot\n";
        double pass_millis = 0.0;
        for (const CompilationResult &instance : result.instances)
            pass_millis += instance.totalMillis();
        std::cout << std::fixed << std::setprecision(3)
                  << "wall time: " << result.wallMillis << " ms ("
                  << std::setprecision(1)
                  << 1e3 * double(count) / result.wallMillis
                  << " instances/s; " << std::setprecision(3)
                  << result.wallMillis / double(count)
                  << " ms/instance)\n"
                  << "aggregate pass time: " << pass_millis
                  << " ms\n";
        const ScheduledCircuit &first =
            result.instances.front().scheduled;
        std::cout << "schedule: " << first.instructions().size()
                  << " instructions, " << first.totalDuration()
                  << " ns (instance 0)\n";
        if (cli.dump)
            std::cout << "\n" << first.toString();
        return 0;
    }

    Rng rng(cli.seed);
    const CompilationResult result =
        pipeline.compile(logical, backend, rng);

    std::cout << "pass timings:\n";
    for (const PassMetric &metric : result.metrics)
        std::cout << "  " << std::left << std::setw(22)
                  << metric.name << std::fixed
                  << std::setprecision(3) << metric.millis
                  << " ms\n";
    std::cout << "  " << std::left << std::setw(22) << "total"
              << std::fixed << std::setprecision(3)
              << result.totalMillis() << " ms\n\n";

    const ScheduledCircuit &sched = result.scheduled;
    std::cout << "schedule: " << sched.instructions().size()
              << " instructions, " << sched.totalDuration()
              << " ns\n";
    if (const auto *gates =
            result.property<std::size_t>(kTwirlGatesKey))
        std::cout << "twirl gates inserted: " << *gates << "\n";
    if (const auto *windows =
            result.property<std::vector<IdleWindow>>(
                kIdleWindowsKey))
        std::cout << "residual idle windows >= Dmin: "
                  << windows->size() << "\n";
    if (const auto *pulses =
            result.property<std::size_t>(kDdPulsesKey))
        std::cout << "DD pulses inserted: " << *pulses << "\n";
    if (const auto *stats =
            result.property<CaecStats>(kCaecStatsKey))
        std::cout << "CA-EC: " << stats->absorbedIntoGates
                  << " absorbed, " << stats->insertedRz << " rz, "
                  << stats->insertedRzz << " rzz\n";
    for (const std::string &note : result.notes)
        std::cout << "note: " << note << "\n";

    if (cli.dump)
        std::cout << "\n" << sched.toString();
    return 0;
}
