/**
 * @file
 * Sharded ensemble execution over files: plan / run / merge.
 *
 * Multi-host fan-out of an estimator job becomes a shell script (or
 * a two-line scheduler template): `plan` writes one spec file per
 * shard, each `run` may happen in any process on any host, and
 * `merge` reassembles the results into the exact bits a
 * single-process Engine::runEnsemble would have produced:
 *
 *   $ casq_shard plan --shards 3 --out job --qubits 8 --depth 16
 *   $ casq_shard run --spec job.0of3.spec --out job.0of3.result &
 *   $ casq_shard run --spec job.1of3.spec --out job.1of3.result &
 *   $ casq_shard run --spec job.2of3.spec --out job.2of3.result &
 *   $ wait
 *   $ casq_shard merge job.*.result
 *
 * `merge` writes the estimates to stdout and all narration to
 * stderr, so merged outputs of different shard counts of the same
 * job diff clean -- CI pins S=3 against S=1 exactly this way.
 * `describe` pretty-prints a decoded spec or result payload.
 * See docs/sharding.md for the format and determinism contract.
 */

#include <cstring>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/serialize.hh"
#include "sim/shard.hh"
#include "tool_common.hh"

using namespace casq;

namespace {

int
usage(std::ostream &os, int code)
{
    os << "usage: casq_shard <command> [options]\n"
          "\n"
          "commands:\n"
          "  plan   --shards S --out PREFIX [workload options]\n"
          "         write PREFIX.<k>of<S>.spec for every shard\n"
          "  run    --spec FILE --out FILE [--threads N]\n"
          "         execute one shard spec into a result file\n"
          "  merge  FILE...\n"
          "         merge the result files of one job; estimates\n"
          "         go to stdout, narration to stderr\n"
          "  describe FILE\n"
          "         pretty-print a spec or result payload\n"
          "\n"
          "plan workload options:\n"
          "  --qubits N        chain length (default 8)\n"
          "  --depth D         ECR/idle layer pairs (default 16)\n"
          "  --strategy NAME   suppression strategy (default ca-dd)\n"
          "  --backend NAME    linear|ring|nazca|sherbrooke\n"
          "                    (default linear)\n"
          "  --backend-seed X  device calibration seed\n"
          "  --instances M     twirled instances (default 8)\n"
          "  --traj T          total trajectories (default 200)\n"
          "  --seed S          simulation master seed\n"
          "  --compile-seed C  compilation master seed\n"
          "  --no-twirl        disable Pauli twirling\n"
          "  --native          lower to the native gate set\n"
          "  --sim-backend B   auto|dense|stabilizer simulation\n"
          "                    substrate (default dense)\n"
          "  --noise M         noise recipe: base[:scale] of\n"
          "                    standard|pauli|ideal|coherent plus\n"
          "                    +corr[:sig[:len]] / +drift[:rate]\n"
          "                    extras (default standard;\n"
          "                    docs/noise.md)\n"
          "  --no-prefix-cache recompile the pass prefix per "
          "instance\n"
          "  --prefix-state M  auto|off trajectory prefix-state\n"
          "                    checkpoint reuse (default auto;\n"
          "                    never changes any result bit)\n";
    return code;
}

/** --flag VALUE helper over argv[i..]. */
const char *
value(int argc, char **argv, int &i, const char *flag)
{
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc)
        return argv[++i];
    return nullptr;
}

std::string
specPath(const std::string &prefix, std::uint32_t k,
         std::uint32_t count)
{
    return prefix + "." + std::to_string(k) + "of" +
           std::to_string(count) + ".spec";
}

int
cmdPlan(int argc, char **argv)
{
    std::uint32_t shards = 1;
    std::string out;
    ShardSpec spec;
    spec.backendQubits = 8;
    std::size_t qubits = 8;
    int depth = 16;
    spec.seed = 1234;
    spec.compileSeed = 0;

    constexpr long long kMaxInt =
        std::numeric_limits<int>::max();
    for (int i = 2; i < argc; ++i) {
        if (const char *v = value(argc, argv, i, "--shards")) {
            shards = std::uint32_t(
                bench::checkedInt("--shards", v, 1, 1 << 20));
        } else if (const char *v = value(argc, argv, i, "--out")) {
            out = v;
        } else if (const char *v = value(argc, argv, i, "--qubits")) {
            qubits = std::size_t(
                bench::checkedInt("--qubits", v, 1, 1 << 20));
        } else if (const char *v = value(argc, argv, i, "--depth")) {
            depth = int(bench::checkedInt("--depth", v, 0, kMaxInt));
        } else if (const char *v =
                       value(argc, argv, i, "--strategy")) {
            spec.strategy = v;
        } else if (const char *v =
                       value(argc, argv, i, "--backend")) {
            spec.backend = backendRecipeFromName(v);
        } else if (const char *v =
                       value(argc, argv, i, "--backend-seed")) {
            spec.backendSeed =
                bench::checkedUInt64("--backend-seed", v);
        } else if (const char *v =
                       value(argc, argv, i, "--instances")) {
            spec.instances = int(
                bench::checkedInt("--instances", v, 1, kMaxInt));
        } else if (const char *v = value(argc, argv, i, "--traj")) {
            spec.trajectories =
                int(bench::checkedInt("--traj", v, 1, kMaxInt));
        } else if (const char *v = value(argc, argv, i, "--seed")) {
            spec.seed = bench::checkedUInt64("--seed", v);
        } else if (const char *v =
                       value(argc, argv, i, "--compile-seed")) {
            spec.compileSeed =
                bench::checkedUInt64("--compile-seed", v);
        } else if (const char *v =
                       value(argc, argv, i, "--sim-backend")) {
            const auto kind = simBackendKindFromName(v);
            if (!kind) {
                std::cerr << "plan: unknown simulation backend '"
                          << v << "'\n";
                return 1;
            }
            spec.simBackend = *kind;
        } else if (const char *v = value(argc, argv, i, "--noise")) {
            try {
                spec.noise = noiseModelFromRecipe(v);
            } catch (const SerializeError &err) {
                std::cerr << "plan: bad noise recipe '" << v
                          << "': " << err.what() << "\n";
                return 1;
            }
        } else if (const char *v =
                       value(argc, argv, i, "--prefix-state")) {
            const auto mode = prefixStateModeFromName(v);
            if (!mode) {
                std::cerr << "plan: unknown prefix-state mode '"
                          << v << "'\n";
                return 1;
            }
            spec.prefixState = *mode;
        } else if (std::strcmp(argv[i], "--no-twirl") == 0) {
            spec.twirl = false;
        } else if (std::strcmp(argv[i], "--native") == 0) {
            spec.lowerToNative = true;
        } else if (std::strcmp(argv[i], "--no-prefix-cache") == 0) {
            spec.prefixCache = false;
        } else {
            std::cerr << "plan: unknown argument '" << argv[i]
                      << "'\n";
            return usage(std::cerr, 1);
        }
    }
    if (shards < 1 || out.empty()) {
        std::cerr << "plan: need --shards >= 1 and --out PREFIX\n";
        return 1;
    }
    if (!strategyFromName(spec.strategy)) {
        std::cerr << "plan: unknown strategy '" << spec.strategy
                  << "'\n";
        return 1;
    }

    spec.shardCount = shards;
    spec.logical = bench::syntheticChainWorkload(
        qubits, depth, /*idle_layers=*/true);
    spec.backendQubits = std::uint32_t(qubits);
    for (std::uint32_t q = 0; q < qubits; ++q)
        spec.observables.push_back(
            PauliString::single(qubits, q, PauliOp::Z));

    // One spec per shard; only the shard index differs, so every
    // file shares the job fingerprint `merge` checks.
    for (std::uint32_t k = 0; k < shards; ++k) {
        spec.shardIndex = k;
        const std::string path = specPath(out, k, shards);
        writeBinaryFile(path, spec.encode());
        std::cerr << "wrote " << path << "\n";
    }
    std::cerr << "job fingerprint: " << std::hex
              << spec.jobFingerprint() << std::dec << " ("
              << spec.instances << " instances, "
              << spec.trajectories << " trajectories over "
              << shards << " shard" << (shards == 1 ? "" : "s")
              << ")\n";
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    std::string spec_path, out_path;
    int threads = 1;
    for (int i = 2; i < argc; ++i) {
        if (const char *v = value(argc, argv, i, "--spec")) {
            spec_path = v;
        } else if (const char *v = value(argc, argv, i, "--out")) {
            out_path = v;
        } else if (const char *v =
                       value(argc, argv, i, "--threads")) {
            threads =
                int(bench::checkedInt("--threads", v, 0, 4096));
        } else {
            std::cerr << "run: unknown argument '" << argv[i]
                      << "'\n";
            return usage(std::cerr, 1);
        }
    }
    if (spec_path.empty() || out_path.empty()) {
        std::cerr << "run: need --spec FILE and --out FILE\n";
        return 1;
    }

    const ShardSpec spec =
        tool::decodePayloadFile<ShardSpec>(spec_path);
    const ShardResult result = executeShard(spec, threads);
    writeBinaryFile(out_path, result.encode());
    std::cerr << "shard " << spec.shardIndex << "/"
              << spec.shardCount << ": "
              << result.ownedTrajectories() << " trajectories over "
              << result.instances.size() << " instance(s) -> "
              << out_path << "\n";
    return 0;
}

int
cmdMerge(int argc, char **argv)
{
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
        if (argv[i][0] == '-') {
            std::cerr << "merge: unknown argument '" << argv[i]
                      << "'\n";
            return usage(std::cerr, 1);
        }
        paths.push_back(argv[i]);
    }
    if (paths.empty()) {
        std::cerr << "merge: need at least one result file\n";
        return 1;
    }

    std::vector<ShardResult> shards;
    shards.reserve(paths.size());
    for (const std::string &path : paths)
        shards.push_back(
            tool::decodePayloadFile<ShardResult>(path));
    const RunResult merged = mergeShards(shards);
    std::cerr << "merged " << shards.size() << " shard"
              << (shards.size() == 1 ? "" : "s") << " of job "
              << std::hex << shards.front().jobFingerprint
              << std::dec << "\n";

    // Stdout carries only the estimates, shard-count-independent
    // and bit-exact (hexfloat), so outputs of different shardings
    // of one job can be diffed directly.
    std::cout << "trajectories " << merged.trajectories
              << " observables " << merged.means.size() << "\n";
    for (std::size_t k = 0; k < merged.means.size(); ++k) {
        std::cout << "obs " << k << " mean " << std::hexfloat
                  << merged.means[k] << " stderr "
                  << merged.stderrs[k] << std::defaultfloat
                  << " (" << std::setprecision(6)
                  << merged.means[k] << " +- " << merged.stderrs[k]
                  << ")\n";
    }
    return 0;
}

int
cmdDescribe(int argc, char **argv)
{
    if (argc < 3) {
        std::cerr << "describe: need a payload file\n";
        return 1;
    }
    const std::string path = argv[2];
    const auto bytes = tool::readPayloadFile(path);
    // Dispatch on the magic so a corrupt spec reports the spec
    // decoder's diagnostic instead of a misleading result-decode
    // failure.
    const bool is_spec =
        bytes.size() >= 4 && bytes[0] == 'C' && bytes[1] == 'S' &&
        bytes[2] == 'Q' && bytes[3] == 'S';
    if (is_spec) {
        const ShardSpec spec =
            tool::decodePayload<ShardSpec>(path, bytes);
        std::cout << "shard spec " << spec.shardIndex << "/"
                  << spec.shardCount << "\n"
                  << "  job fingerprint " << std::hex
                  << spec.jobFingerprint() << std::dec << "\n"
                  << "  circuit " << spec.logical.numQubits()
                  << " qubits, " << spec.logical.layers().size()
                  << " layers\n"
                  << "  observables " << spec.observables.size()
                  << "\n"
                  << "  pipeline " << spec.strategy
                  << (spec.twirl ? " (twirled)" : " (untwirled)")
                  << (spec.lowerToNative ? " native" : "") << "\n"
                  << "  backend "
                  << backendRecipeName(spec.backend) << " "
                  << spec.backendQubits << "q seed "
                  << spec.backendSeed << "\n"
                  << "  instances " << spec.instances
                  << " compile-seed " << spec.compileSeed
                  << (spec.prefixCache ? "" : " no-prefix-cache")
                  << "\n"
                  << "  trajectories " << spec.trajectories
                  << " seed " << spec.seed << "\n"
                  << "  sim-backend "
                  << simBackendKindName(spec.simBackend)
                  << " noise " << noiseModelRecipe(spec.noise)
                  << " prefix-state "
                  << prefixStateModeName(spec.prefixState)
                  << "\n";
        return 0;
    }
    const ShardResult result =
        tool::decodePayload<ShardResult>(path, bytes);
    std::cout << "shard result " << result.shardIndex << "/"
              << result.shardCount << "\n"
              << "  job fingerprint " << std::hex
              << result.jobFingerprint << std::dec << "\n"
              << "  owns " << result.ownedTrajectories() << " of "
              << result.trajectories << " trajectories, "
              << result.observableCount << " observable(s)\n"
              << "  compiled instances:";
    for (std::size_t i = 0; i < result.instances.size(); ++i)
        std::cout << " " << result.instances[i] << ":" << std::hex
                  << result.fingerprints[i] << std::dec;
    std::cout << "\n  seeds sim " << result.seed << " compile "
              << result.compileSeed << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 1);
    const std::string command = argv[1];
    return tool::runTool("casq_shard", [&]() -> int {
        if (command == "plan")
            return cmdPlan(argc, argv);
        if (command == "run")
            return cmdRun(argc, argv);
        if (command == "merge")
            return cmdMerge(argc, argv);
        if (command == "describe")
            return cmdDescribe(argc, argv);
        if (command == "--help" || command == "help")
            return usage(std::cout, 0);
        std::cerr << "unknown command '" << command << "'\n";
        return usage(std::cerr, 1);
    });
}
