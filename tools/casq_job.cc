/**
 * @file
 * casq_job: client for the casq_serve daemon.
 *
 *   $ casq_job submit --socket /tmp/casq.sock --id demo \
 *         --qubits 6 --depth 8 --instances 8 --traj 120 --shards 4
 *   $ casq_job status --socket /tmp/casq.sock --id demo
 *   $ casq_job result --socket /tmp/casq.sock --id demo --wait
 *   $ casq_job list   --socket /tmp/casq.sock
 *   $ casq_job stats  --socket /tmp/casq.sock
 *   $ casq_job cancel --socket /tmp/casq.sock --id demo
 *   $ casq_job shutdown --socket /tmp/casq.sock
 *
 * `submit` builds the same synthetic-chain workload as `casq_shard
 * plan` (and casq_compile), and `result` prints the same
 * "<Z_q> = mean +- stderr" estimate lines as `casq_compile
 * --simulate` -- with --hexfloat they are bit-exact, so a job
 * served through the daemon diffs clean against a single-process
 * run of the same spec.  Estimates go to stdout, narration to
 * stderr.
 *
 * Exit codes: 0 success, 1 failure, 75 (EX_TEMPFAIL) backpressure
 * -- the queue was full, nothing is wrong with the job; back off
 * and resubmit.
 */

#include <cstring>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "service/protocol.hh"
#include "service/socket.hh"
#include "tool_common.hh"

using namespace casq;

namespace {

constexpr int kExitBackpressure = 75; //!< EX_TEMPFAIL

int
usage(std::ostream &os, int code)
{
    os << "usage: casq_job <command> --socket PATH [options]\n"
          "\n"
          "commands:\n"
          "  submit  --id ID [workload options] [--shards S]\n"
          "  status  --id ID\n"
          "  list\n"
          "  stats\n"
          "  result  --id ID [--wait] [--hexfloat]\n"
          "  cancel  --id ID\n"
          "  shutdown\n"
          "  ping\n"
          "\n"
          "submit workload options (casq_shard plan semantics):\n"
          "  --qubits N --depth D --strategy NAME\n"
          "  --backend NAME --backend-seed X\n"
          "  --instances M --traj T --seed S --compile-seed C\n"
          "  --shards S --no-twirl --native --no-prefix-cache\n"
          "  --sim-backend auto|dense|stabilizer\n"
          "  --noise RECIPE (base[:scale] + extras; docs/noise.md)\n"
          "  --prefix-state auto|off\n";
    return code;
}

const char *
value(int argc, char **argv, int &i, const char *flag)
{
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc)
        return argv[++i];
    return nullptr;
}

/** One request/reply round trip; ErrorReply rethrows typed. */
std::vector<std::uint8_t>
roundTrip(const std::string &socket_path,
          const std::vector<std::uint8_t> &request)
{
    LocalSocket sock = LocalSocket::connect(socket_path);
    sock.sendFrame(request);
    const auto reply = sock.recvFrame();
    if (!reply) {
        throw ServiceError(
            "daemon closed the connection without a reply");
    }
    if (peekMessageType(*reply) == MessageType::ErrorReply)
        ErrorReply::decode(*reply).raise();
    return *reply;
}

void
printJob(const JobProgress &job)
{
    std::cout << "job " << job.id << ": " << jobStateName(job.state)
              << " (" << job.shardsDone << "/" << job.shards.size()
              << " shards";
    if (job.retries)
        std::cout << ", " << job.retries << " retried";
    std::cout << ")";
    if (job.trajectoriesDone) {
        std::cout << " " << job.trajectoriesDone << "/"
                  << job.trajectories << " trajectories";
        if (job.prefixStateHits)
            std::cout << " (" << job.prefixStateHits
                      << " prefix-forked)";
        if (job.trajectoriesPerSecond > 0.0) {
            std::cout << " @ " << std::fixed
                      << std::setprecision(1)
                      << job.trajectoriesPerSecond << "/s"
                      << std::defaultfloat;
        }
    }
    if (!job.error.empty())
        std::cout << " -- " << job.error;
    std::cout << "\n";
}

void
printShards(const JobProgress &job)
{
    for (std::size_t k = 0; k < job.shards.size(); ++k) {
        const ShardProgress &shard = job.shards[k];
        std::cout << "  shard " << k << ": "
                  << shardStateName(shard.state);
        if (shard.worker >= 0)
            std::cout << " worker " << shard.worker;
        if (shard.attempts > 1)
            std::cout << " attempts " << shard.attempts;
        if (shard.stolen)
            std::cout << " (stolen)";
        if (shard.state == ShardState::Done) {
            std::cout << " " << std::fixed << std::setprecision(1)
                      << shard.wallMillis << " ms"
                      << std::defaultfloat;
        }
        std::cout << "\n";
    }
}

int
cmdSubmit(const std::string &socket_path, int argc, char **argv)
{
    JobSpec job;
    ShardSpec &spec = job.work;
    std::size_t qubits = 8;
    int depth = 16;

    constexpr long long kMaxInt = std::numeric_limits<int>::max();
    for (int i = 2; i < argc; ++i) {
        if (value(argc, argv, i, "--socket")) {
            // consumed by main
        } else if (const char *v = value(argc, argv, i, "--id")) {
            job.id = v;
        } else if (const char *v =
                       value(argc, argv, i, "--shards")) {
            spec.shardCount = std::uint32_t(
                bench::checkedInt("--shards", v, 1, 1 << 20));
        } else if (const char *v =
                       value(argc, argv, i, "--qubits")) {
            qubits = std::size_t(
                bench::checkedInt("--qubits", v, 1, 1 << 20));
        } else if (const char *v = value(argc, argv, i, "--depth")) {
            depth =
                int(bench::checkedInt("--depth", v, 0, kMaxInt));
        } else if (const char *v =
                       value(argc, argv, i, "--strategy")) {
            spec.strategy = v;
        } else if (const char *v =
                       value(argc, argv, i, "--backend")) {
            spec.backend = backendRecipeFromName(v);
        } else if (const char *v =
                       value(argc, argv, i, "--backend-seed")) {
            spec.backendSeed =
                bench::checkedUInt64("--backend-seed", v);
        } else if (const char *v =
                       value(argc, argv, i, "--instances")) {
            spec.instances = int(
                bench::checkedInt("--instances", v, 1, kMaxInt));
        } else if (const char *v = value(argc, argv, i, "--traj")) {
            spec.trajectories =
                int(bench::checkedInt("--traj", v, 1, kMaxInt));
        } else if (const char *v = value(argc, argv, i, "--seed")) {
            spec.seed = bench::checkedUInt64("--seed", v);
        } else if (const char *v =
                       value(argc, argv, i, "--compile-seed")) {
            spec.compileSeed =
                bench::checkedUInt64("--compile-seed", v);
        } else if (const char *v =
                       value(argc, argv, i, "--sim-backend")) {
            const auto kind = simBackendKindFromName(v);
            if (!kind) {
                std::cerr << "submit: unknown simulation backend '"
                          << v << "'\n";
                return 1;
            }
            spec.simBackend = *kind;
        } else if (const char *v = value(argc, argv, i, "--noise")) {
            try {
                spec.noise = noiseModelFromRecipe(v);
            } catch (const SerializeError &err) {
                std::cerr << "submit: bad noise recipe '" << v
                          << "': " << err.what() << "\n";
                return 1;
            }
        } else if (const char *v =
                       value(argc, argv, i, "--prefix-state")) {
            const auto mode = prefixStateModeFromName(v);
            if (!mode) {
                std::cerr << "submit: unknown prefix-state mode '"
                          << v << "'\n";
                return 1;
            }
            spec.prefixState = *mode;
        } else if (std::strcmp(argv[i], "--no-twirl") == 0) {
            spec.twirl = false;
        } else if (std::strcmp(argv[i], "--native") == 0) {
            spec.lowerToNative = true;
        } else if (std::strcmp(argv[i], "--no-prefix-cache") == 0) {
            spec.prefixCache = false;
        } else {
            std::cerr << "submit: unknown argument '" << argv[i]
                      << "'\n";
            return usage(std::cerr, 1);
        }
    }
    if (job.id.empty()) {
        std::cerr << "submit: need --id ID\n";
        return 1;
    }

    spec.shardIndex = 0;
    spec.logical = bench::syntheticChainWorkload(
        qubits, depth, /*idle_layers=*/true);
    spec.backendQubits = std::uint32_t(qubits);
    for (std::uint32_t q = 0; q < qubits; ++q)
        spec.observables.push_back(
            PauliString::single(qubits, q, PauliOp::Z));

    SubmitRequest request;
    request.job = std::move(job);
    const auto frame = request.encode();
    (void)SubmitReply::decode(roundTrip(socket_path, frame));
    std::cerr << "submitted job '" << request.job.id << "' ("
              << request.job.work.instances << " instances, "
              << request.job.work.trajectories
              << " trajectories over " << request.job.shards()
              << " shard"
              << (request.job.shards() == 1 ? "" : "s") << ")\n";
    return 0;
}

int
cmdStatus(const std::string &socket_path, const std::string &id)
{
    const StatusReply reply = StatusReply::decode(
        roundTrip(socket_path, StatusRequest{id}.encode()));
    printJob(reply.job);
    printShards(reply.job);
    return 0;
}

int
cmdList(const std::string &socket_path)
{
    const ListReply reply = ListReply::decode(
        roundTrip(socket_path, ListRequest{}.encode()));
    if (reply.jobs.empty()) {
        std::cout << "no jobs\n";
        return 0;
    }
    for (const JobProgress &job : reply.jobs)
        printJob(job);
    return 0;
}

int
cmdStats(const std::string &socket_path)
{
    const StatsReply reply = StatsReply::decode(
        roundTrip(socket_path, StatsRequest{}.encode()));
    const ServiceTotals &t = reply.totals;
    std::cout << "jobsAdmitted " << t.jobsAdmitted << "\n"
              << "jobsDone " << t.jobsDone << "\n"
              << "jobsFailed " << t.jobsFailed << "\n"
              << "jobsCancelled " << t.jobsCancelled << "\n"
              << "shardsExecuted " << t.shardsExecuted << "\n"
              << "shardFailures " << t.shardFailures << "\n"
              << "shardRetries " << t.shardRetries << "\n"
              << "shardsStolen " << t.shardsStolen << "\n"
              << "trajectoriesDone " << t.trajectoriesDone << "\n"
              << "prefixStateHits " << t.prefixStateHits << "\n"
              << std::fixed << std::setprecision(1) << "upMillis "
              << t.upMillis << "\n"
              << "trajectoriesPerSecond "
              << t.trajectoriesPerSecond << "\n";
    return 0;
}

int
cmdResult(const std::string &socket_path, const std::string &id,
          bool wait, bool hexfloat)
{
    ResultRequest request;
    request.id = id;
    request.wait = wait;
    const ResultReply reply = ResultReply::decode(
        roundTrip(socket_path, request.encode()));

    if (reply.job.state != JobState::Done) {
        std::cerr << "job '" << id << "' "
                  << jobStateName(reply.job.state)
                  << (reply.job.error.empty()
                          ? std::string()
                          : ": " + reply.job.error)
                  << "\n";
        return 1;
    }
    std::cerr << "job '" << id << "' done: "
              << reply.result.trajectories << " trajectories, "
              << reply.result.means.size() << " observable"
              << (reply.result.means.size() == 1 ? "" : "s");
    if (reply.job.retries)
        std::cerr << ", " << reply.job.retries
                  << " shard retry/retries absorbed";
    std::cerr << "\n";

    // Exactly casq_compile --simulate's estimate lines; with
    // --hexfloat the bytes gate cross-process determinism in CI.
    if (hexfloat)
        std::cout << std::hexfloat;
    else
        std::cout << std::setprecision(6);
    for (std::size_t q = 0; q < reply.result.means.size(); ++q)
        std::cout << "<Z_" << q << "> = " << reply.result.means[q]
                  << " +- " << reply.result.stderrs[q] << "\n";
    return 0;
}

int
cmdCancel(const std::string &socket_path, const std::string &id)
{
    const CancelReply reply = CancelReply::decode(
        roundTrip(socket_path, CancelRequest{id}.encode()));
    switch (reply.outcome) {
      case JobService::CancelOutcome::Cancelled:
        std::cerr << "cancelled job '" << id << "'\n";
        return 0;
      case JobService::CancelOutcome::AlreadyTerminal:
        std::cerr << "job '" << id << "' already finished\n";
        return 0;
      case JobService::CancelOutcome::Unknown: break;
    }
    std::cerr << "unknown job '" << id << "'\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 1);
    const std::string command = argv[1];
    if (command == "--help" || command == "help")
        return usage(std::cout, 0);

    std::string socket_path;
    std::string id;
    bool wait = false;
    bool hexfloat = false;
    for (int i = 2; i < argc; ++i) {
        if (const char *v = value(argc, argv, i, "--socket"))
            socket_path = v;
        else if (const char *v = value(argc, argv, i, "--id"))
            id = v;
        else if (std::strcmp(argv[i], "--wait") == 0)
            wait = true;
        else if (std::strcmp(argv[i], "--hexfloat") == 0)
            hexfloat = true;
    }
    if (socket_path.empty()) {
        std::cerr << "need --socket PATH\n";
        return usage(std::cerr, 1);
    }

    try {
        if (command == "submit")
            return cmdSubmit(socket_path, argc, argv);
        if (command == "status" || command == "result" ||
            command == "cancel") {
            if (id.empty()) {
                std::cerr << command << ": need --id ID\n";
                return 1;
            }
        }
        if (command == "status")
            return cmdStatus(socket_path, id);
        if (command == "list")
            return cmdList(socket_path);
        if (command == "stats")
            return cmdStats(socket_path);
        if (command == "result")
            return cmdResult(socket_path, id, wait, hexfloat);
        if (command == "cancel")
            return cmdCancel(socket_path, id);
        if (command == "shutdown") {
            (void)ShutdownReply::decode(roundTrip(
                socket_path, ShutdownRequest{}.encode()));
            std::cerr << "daemon shutting down\n";
            return 0;
        }
        if (command == "ping") {
            (void)PingReply::decode(
                roundTrip(socket_path, PingRequest{}.encode()));
            std::cerr << "pong\n";
            return 0;
        }
    } catch (const BackpressureError &err) {
        std::cerr << "casq_job: " << err.what() << "\n";
        return kExitBackpressure;
    } catch (const std::exception &err) {
        std::cerr << "casq_job: " << tool::describeError("", err)
                  << "\n";
        return 1;
    }
    std::cerr << "unknown command '" << command << "'\n";
    return usage(std::cerr, 1);
}
