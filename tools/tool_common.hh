/**
 * @file
 * Shared glue for the command-line tools (casq_shard, casq_serve,
 * casq_job): every payload-decode failure and every top-level error
 * funnels through the helpers here, so all three tools render the
 * same canonical diagnostic -- "file: byte N: message" for corrupt
 * payloads (describePayloadError), "file: message" for other file
 * failures, and "<tool>: message" at the top level.
 */

#ifndef CASQ_TOOLS_TOOL_COMMON_HH
#define CASQ_TOOLS_TOOL_COMMON_HH

#include <cstdint>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "common/serialize.hh"

namespace casq::tool {

/**
 * The one canonical error rendering: SerializeErrors (corrupt or
 * truncated payloads) become "path: byte N: message"; anything else
 * becomes "path: message" (or just the message without a path).
 */
inline std::string
describeError(const std::string &path, const std::exception &err)
{
    if (const auto *payload =
            dynamic_cast<const SerializeError *>(&err)) {
        return describePayloadError(path, *payload);
    }
    if (path.empty())
        return err.what();
    return path + ": " + err.what();
}

/** Read a payload file, rendering I/O failures canonically. */
inline std::vector<std::uint8_t>
readPayloadFile(const std::string &path)
{
    try {
        return readBinaryFile(path);
    } catch (const SerializeError &err) {
        throw SerializeError(describePayloadError(path, err));
    }
}

/**
 * Decode in-memory payload bytes read from `path`; a decode failure
 * rethrows SerializeError with the canonical "path: byte N:"
 * rendering already applied.
 */
template <class Payload>
Payload
decodePayload(const std::string &path,
              const std::vector<std::uint8_t> &bytes)
{
    try {
        return Payload::decode(bytes);
    } catch (const SerializeError &err) {
        throw SerializeError(describePayloadError(path, err));
    }
}

/** Read + decode a payload file in one step. */
template <class Payload>
Payload
decodePayloadFile(const std::string &path)
{
    return decodePayload<Payload>(path, readPayloadFile(path));
}

/**
 * Top-level tool wrapper: run `body`, printing any escaped failure
 * as "<tool>: message" on stderr and returning the failure exit
 * code.
 */
template <class Body>
int
runTool(const char *tool, Body &&body)
{
    try {
        return body();
    } catch (const std::exception &err) {
        std::cerr << tool << ": " << describeError("", err) << "\n";
        return 1;
    }
}

} // namespace casq::tool

#endif // CASQ_TOOLS_TOOL_COMMON_HH
