/**
 * @file
 * casq_serve: the job-service daemon.
 *
 * Listens on a local AF_UNIX socket for casq_job clients, admits
 * jobs through the bounded JobQueue, executes their shards on a
 * pool of worker slots with retry and work-stealing, and serves
 * status/result queries from the ProgressReporter -- see
 * docs/service.md.
 *
 *   $ casq_serve --socket /tmp/casq.sock --slots 2 &
 *   $ casq_job submit --socket /tmp/casq.sock --id demo \
 *         --qubits 6 --depth 8 --instances 8 --traj 120 --shards 4
 *   $ casq_job result --socket /tmp/casq.sock --id demo --wait
 *
 * Shards run in-process by default; --spawn executes each shard as
 * a `casq_shard run` subprocess instead, which is what makes a
 * worker death a survivable event (the scheduler re-queues the
 * shard; bit-determinism makes the re-execution merge-hazard-free).
 * --kill-nth-spawn N SIGKILLs the Nth spawned subprocess after
 * --kill-delay-ms, so CI can rehearse exactly that failure.
 */

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "bench_common.hh"
#include "service/job_service.hh"
#include "service/protocol.hh"
#include "service/socket.hh"
#include "tool_common.hh"

using namespace casq;

namespace {

int
usage(std::ostream &os, int code)
{
    os << "usage: casq_serve --socket PATH [options]\n"
          "\n"
          "options:\n"
          "  --socket PATH        AF_UNIX socket to listen on\n"
          "  --slots N            worker slots (default 2)\n"
          "  --queue-capacity N   admission queue bound "
          "(default 64)\n"
          "  --max-attempts N     executions per shard before the\n"
          "                       job fails (default 3)\n"
          "  --threads N          engine threads per shard "
          "(default 1)\n"
          "  --no-steal           disable straggler re-execution\n"
          "  --straggler-factor F steal after F x median shard\n"
          "                       wall time (default 4)\n"
          "  --straggler-min-ms M minimum straggler age "
          "(default 250)\n"
          "  --spawn              run each shard as a `casq_shard\n"
          "                       run` subprocess\n"
          "  --shard-tool PATH    casq_shard binary for --spawn\n"
          "                       (default: next to casq_serve)\n"
          "  --work-dir DIR       spool directory for --spawn\n"
          "                       payloads (default: mkdtemp)\n"
          "  --kill-nth-spawn N   chaos: SIGKILL the Nth spawned\n"
          "                       subprocess (0 = never)\n"
          "  --kill-delay-ms M    delay before the chaos kill\n"
          "                       (default 200)\n";
    return code;
}

const char *
value(int argc, char **argv, int &i, const char *flag)
{
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc)
        return argv[++i];
    return nullptr;
}

/**
 * Executes shards as `casq_shard run` subprocesses, spooling the
 * spec/result payloads through workDir.  Any subprocess failure --
 * nonzero exit, death by signal (the chaos kill), or a corrupt
 * result payload -- throws ShardExecutionError, which the
 * scheduler's retry budget absorbs.
 */
class SubprocessShardRunner : public ShardRunner
{
  public:
    struct Options
    {
        std::string shardTool;
        std::string workDir;
        int threads = 1;
        long killNthSpawn = 0; //!< 0 = chaos disabled
        long killDelayMs = 200;
    };

    explicit SubprocessShardRunner(Options options)
        : _options(std::move(options))
    {
    }

    ShardResult
    run(const ShardSpec &spec, const ShardRunContext &ctx) override
    {
        const std::string base =
            _options.workDir + "/" + ctx.jobId + "." +
            std::to_string(ctx.shardIndex) + ".a" +
            std::to_string(ctx.attempt);
        const std::string spec_path = base + ".spec";
        const std::string result_path = base + ".result";
        writeBinaryFile(spec_path, spec.encode());

        const std::string threads =
            std::to_string(_options.threads);
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::unlink(spec_path.c_str());
            throw ShardExecutionError(
                std::string("fork() failed: ") +
                std::strerror(errno));
        }
        if (pid == 0) {
            ::execl(_options.shardTool.c_str(), "casq_shard",
                    "run", "--spec", spec_path.c_str(), "--out",
                    result_path.c_str(), "--threads",
                    threads.c_str(),
                    static_cast<char *>(nullptr));
            _exit(127);
        }

        const long spawn = ++_spawned;
        if (_options.killNthSpawn > 0 &&
            spawn == _options.killNthSpawn) {
            const long delay = _options.killDelayMs;
            std::thread([pid, delay] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
                ::kill(pid, SIGKILL);
            }).detach();
            std::cerr << "chaos: will SIGKILL spawn #" << spawn
                      << " (pid " << pid << ") after " << delay
                      << " ms\n";
        }

        int status = 0;
        for (;;) {
            if (::waitpid(pid, &status, 0) >= 0)
                break;
            if (errno == EINTR)
                continue;
            ::unlink(spec_path.c_str());
            throw ShardExecutionError(
                std::string("waitpid() failed: ") +
                std::strerror(errno));
        }
        ::unlink(spec_path.c_str());

        const std::string who = "casq_shard run (job '" +
                                ctx.jobId + "' shard " +
                                std::to_string(ctx.shardIndex) +
                                " attempt " +
                                std::to_string(ctx.attempt) + ")";
        if (WIFSIGNALED(status)) {
            ::unlink(result_path.c_str());
            throw ShardExecutionError(
                who + " was killed by signal " +
                std::to_string(WTERMSIG(status)));
        }
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            ::unlink(result_path.c_str());
            throw ShardExecutionError(
                who + " exited with status " +
                std::to_string(WIFEXITED(status)
                                   ? WEXITSTATUS(status)
                                   : -1));
        }
        try {
            ShardResult result =
                tool::decodePayloadFile<ShardResult>(result_path);
            ::unlink(result_path.c_str());
            return result;
        } catch (const SerializeError &err) {
            ::unlink(result_path.c_str());
            // Corrupt result payload: retryable like any other
            // worker failure (the rendering already carries the
            // file + byte offset).
            throw ShardExecutionError(who + ": " + err.what());
        }
    }

  private:
    Options _options;
    std::atomic<long> _spawned{0};
};

/** Map an exception to the ErrorReply taxonomy. */
ErrorReply
errorReplyFor(const std::exception &err)
{
    ErrorReply reply;
    reply.message = err.what();
    if (dynamic_cast<const BackpressureError *>(&err))
        reply.kind = ErrorReply::Kind::Backpressure;
    else if (dynamic_cast<const AdmissionError *>(&err))
        reply.kind = ErrorReply::Kind::Admission;
    else if (const auto *payload =
                 dynamic_cast<const SerializeError *>(&err)) {
        reply.kind = ErrorReply::Kind::Payload;
        reply.message = describePayloadError("", *payload);
    }
    return reply;
}

/** Handle one request frame; sets `shutdown` on ShutdownRequest. */
std::vector<std::uint8_t>
dispatch(JobService &service,
         const std::vector<std::uint8_t> &frame, bool &shutdown)
{
    switch (peekMessageType(frame)) {
      case MessageType::SubmitRequest: {
        SubmitRequest request = SubmitRequest::decode(frame);
        service.submit(std::move(request.job));
        return SubmitReply{}.encode();
      }
      case MessageType::StatusRequest: {
        const StatusRequest request = StatusRequest::decode(frame);
        const auto snapshot = service.status(request.id);
        if (!snapshot)
            throw ServiceError("unknown job '" + request.id + "'");
        return StatusReply{*snapshot}.encode();
      }
      case MessageType::ListRequest: {
        (void)ListRequest::decode(frame);
        return ListReply{service.list()}.encode();
      }
      case MessageType::StatsRequest: {
        (void)StatsRequest::decode(frame);
        return StatsReply{service.totals()}.encode();
      }
      case MessageType::ResultRequest: {
        const ResultRequest request = ResultRequest::decode(frame);
        ResultReply reply;
        if (request.wait) {
            reply.job = service.waitTerminal(request.id);
        } else {
            const auto snapshot = service.status(request.id);
            if (!snapshot) {
                throw ServiceError("unknown job '" + request.id +
                                   "'");
            }
            if (!jobStateTerminal(snapshot->state)) {
                throw ServiceError(
                    "job '" + request.id + "' is still " +
                    jobStateName(snapshot->state) +
                    " (use --wait)");
            }
            reply.job = *snapshot;
        }
        if (reply.job.state == JobState::Done)
            reply.result = service.result(request.id);
        return reply.encode();
      }
      case MessageType::CancelRequest: {
        const CancelRequest request = CancelRequest::decode(frame);
        return CancelReply{service.cancel(request.id)}.encode();
      }
      case MessageType::ShutdownRequest: {
        (void)ShutdownRequest::decode(frame);
        shutdown = true;
        return ShutdownReply{}.encode();
      }
      case MessageType::PingRequest: {
        (void)PingRequest::decode(frame);
        return PingReply{}.encode();
      }
      default:
        throw SerializeError(
            "request frame carries a reply message type");
    }
}

void
handleConnection(LocalSocket sock, JobService &service,
                 LocalListener &listener)
{
    try {
        for (;;) {
            const auto frame = sock.recvFrame();
            if (!frame)
                return; // client hung up
            std::vector<std::uint8_t> reply;
            bool shutdown = false;
            try {
                reply = dispatch(service, *frame, shutdown);
            } catch (const std::exception &err) {
                reply = errorReplyFor(err).encode();
            }
            sock.sendFrame(reply);
            if (shutdown) {
                listener.close();
                return;
            }
        }
    } catch (const std::exception &err) {
        // Transport trouble on one connection never takes the
        // daemon down.
        std::cerr << "connection error: " << err.what() << "\n";
    }
}

LocalListener *g_listener = nullptr;

void
onSignal(int)
{
    if (g_listener)
        g_listener->close(); // atomic store + shutdown(): safe
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string work_dir;
    std::string shard_tool;
    JobServiceOptions options;
    bool spawn = false;
    long kill_nth = 0;
    long kill_delay_ms = 200;

    constexpr long long kMaxInt = std::numeric_limits<int>::max();
    for (int i = 1; i < argc; ++i) {
        if (const char *v = value(argc, argv, i, "--socket")) {
            socket_path = v;
        } else if (const char *v = value(argc, argv, i, "--slots")) {
            options.scheduler.slots = unsigned(
                bench::checkedInt("--slots", v, 1, 4096));
        } else if (const char *v =
                       value(argc, argv, i, "--queue-capacity")) {
            options.queueCapacity = std::size_t(bench::checkedInt(
                "--queue-capacity", v, 1, kMaxInt));
        } else if (const char *v =
                       value(argc, argv, i, "--max-attempts")) {
            options.scheduler.maxAttempts =
                std::uint32_t(bench::checkedInt("--max-attempts",
                                                v, 1, kMaxInt));
        } else if (const char *v =
                       value(argc, argv, i, "--threads")) {
            options.threadsPerShard =
                int(bench::checkedInt("--threads", v, 0, 4096));
        } else if (std::strcmp(argv[i], "--no-steal") == 0) {
            options.scheduler.workStealing = false;
        } else if (const char *v =
                       value(argc, argv, i, "--straggler-factor")) {
            options.scheduler.stragglerFactor = double(
                bench::checkedInt("--straggler-factor", v, 1,
                                  kMaxInt));
        } else if (const char *v = value(argc, argv, i,
                                         "--straggler-min-ms")) {
            options.scheduler.stragglerMinMillis = double(
                bench::checkedInt("--straggler-min-ms", v, 0,
                                  kMaxInt));
        } else if (std::strcmp(argv[i], "--spawn") == 0) {
            spawn = true;
        } else if (const char *v =
                       value(argc, argv, i, "--shard-tool")) {
            shard_tool = v;
        } else if (const char *v =
                       value(argc, argv, i, "--work-dir")) {
            work_dir = v;
        } else if (const char *v =
                       value(argc, argv, i, "--kill-nth-spawn")) {
            kill_nth = long(bench::checkedInt("--kill-nth-spawn",
                                              v, 0, kMaxInt));
        } else if (const char *v =
                       value(argc, argv, i, "--kill-delay-ms")) {
            kill_delay_ms = long(bench::checkedInt(
                "--kill-delay-ms", v, 0, kMaxInt));
        } else if (std::strcmp(argv[i], "--help") == 0) {
            return usage(std::cout, 0);
        } else {
            std::cerr << "unknown argument '" << argv[i] << "'\n";
            return usage(std::cerr, 1);
        }
    }
    if (socket_path.empty()) {
        std::cerr << "need --socket PATH\n";
        return usage(std::cerr, 1);
    }

    return tool::runTool("casq_serve", [&]() -> int {
        std::unique_ptr<ShardRunner> runner;
        std::string spool;
        if (spawn) {
            SubprocessShardRunner::Options sub;
            if (shard_tool.empty()) {
                // Default: casq_shard next to this binary.
                const std::string self = argv[0];
                const std::size_t slash = self.rfind('/');
                sub.shardTool =
                    (slash == std::string::npos
                         ? std::string()
                         : self.substr(0, slash + 1)) +
                    "casq_shard";
            } else {
                sub.shardTool = shard_tool;
            }
            if (work_dir.empty()) {
                char tmpl[] = "/tmp/casq-serve.XXXXXX";
                if (!::mkdtemp(tmpl)) {
                    throw ServiceError(
                        std::string("mkdtemp() failed: ") +
                        std::strerror(errno));
                }
                spool = tmpl;
            } else {
                spool = work_dir;
            }
            sub.workDir = spool;
            sub.threads = std::max(1, options.threadsPerShard);
            sub.killNthSpawn = kill_nth;
            sub.killDelayMs = kill_delay_ms;
            runner = std::make_unique<SubprocessShardRunner>(
                std::move(sub));
        }

        JobService service(options, std::move(runner));
        LocalListener listener =
            LocalListener::bind(socket_path);
        g_listener = &listener;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::signal(SIGPIPE, SIG_IGN);

        std::cerr << "casq_serve: listening on " << socket_path
                  << " (" << options.scheduler.slots << " slot"
                  << (options.scheduler.slots == 1 ? "" : "s")
                  << ", queue capacity " << options.queueCapacity
                  << (spawn ? ", subprocess shards" : "") << ")\n";

        std::vector<std::thread> connections;
        for (;;) {
            LocalSocket sock = listener.accept();
            if (!sock.valid())
                break;
            connections.emplace_back(
                [&service, &listener,
                 conn = std::move(sock)]() mutable {
                    handleConnection(std::move(conn), service,
                                     listener);
                });
        }

        // Stop accepting, then unblock waiters and drain the
        // worker slots before the connection threads join.
        service.shutdown();
        for (std::thread &connection : connections)
            connection.join();
        g_listener = nullptr;
        if (!spool.empty() && work_dir.empty())
            ::rmdir(spool.c_str()); // best effort; may be nonempty
        std::cerr << "casq_serve: shut down\n";
        return 0;
    });
}
